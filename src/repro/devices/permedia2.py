"""Behavioural model of the 3Dlabs Permedia2 graphics controller.

The performance-relevant behaviour for Tables 3 and 4 of the paper is
the **input FIFO**: every drawing-register store lands in a FIFO of
:data:`FIFO_DEPTH` entries, and before queueing a primitive the driver
must poll ``fifo_space`` until enough entries are free.  Each poll is
one I/O operation; the paper denotes the iteration count per wait loop
``#w``.  The model drains :attr:`drain_per_poll` entries per status
poll, so benches can dial ``#w`` to the regime they want to study.

Functionally the model implements a real (small) framebuffer with the
two accelerated primitives the Xfree86 driver uses — ``fill rectangle``
and ``screen area copy`` — plus the software-rendering aperture (an
address register and an auto-incrementing data window).

Pixel-count accounting (:attr:`pixels_filled`, :attr:`pixels_copied`,
``bytes_touched``) feeds the timing model: the paper observes that
drawing time is "proportional to the number of drawn pixels and their
depth".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bus import BusError

REGION_SIZE = 14
FIFO_DEPTH = 32

_FILL, _COPY, _SYNC = 0b01, 0b10, 0b11

#: bytes per pixel for the four depth codes (BPP8/16/24/32).
DEPTH_BYTES = {0b00: 1, 0b01: 2, 0b10: 3, 0b11: 4}


@dataclass
class Permedia2Model:
    """Simulated Permedia2."""

    width: int = 640
    height: int = 480
    #: FIFO entries freed per fifo_space poll (controls #w).
    drain_per_poll: int = 16

    framebuffer: np.ndarray = field(default=None)  # type: ignore[assignment]

    fifo_used: int = 0
    block_color: int = 0
    rect_x: int = 0
    rect_y: int = 0
    rect_width: int = 0
    rect_height: int = 0
    copy_dx: int = 0
    copy_dy: int = 0
    depth_code: int = 0b00
    scissor_min: tuple[int, int] = (0, 0)
    scissor_max: tuple[int, int] = (0xFFFF, 0xFFFF)
    write_mask: int = 0xFFFFFFFF
    logical_op: int = 0x3  # SRC copy
    window_origin: tuple[int, int] = (0, 0)
    fb_address: int = 0

    pixels_filled: int = 0
    pixels_copied: int = 0
    bytes_touched: int = 0
    primitives: int = 0
    fifo_overflows: int = 0

    def __post_init__(self) -> None:
        if self.framebuffer is None:
            self.framebuffer = np.zeros((self.height, self.width),
                                        dtype=np.uint32)

    # ------------------------------------------------------------------
    # Bus interface
    # ------------------------------------------------------------------

    def io_read(self, offset: int, width: int) -> int:
        if width != 32:
            raise BusError(f"Permedia2 registers are 32-bit, got {width}")
        if offset == 0:
            # Polling the FIFO models elapsed time: the engine drains.
            self.fifo_used = max(0, self.fifo_used - self.drain_per_poll)
            return FIFO_DEPTH - self.fifo_used
        if offset == 6:
            return 1 if self.fifo_used > 0 else 0
        raise BusError(f"Permedia2 offset {offset} is not readable")

    def io_write(self, offset: int, value: int, width: int) -> None:
        if width != 32:
            raise BusError(f"Permedia2 registers are 32-bit, got {width}")
        if not 1 <= offset <= 13:
            raise BusError(f"Permedia2 offset {offset} is not writable")
        self._push_fifo()
        if offset == 1:
            self.block_color = value
        elif offset == 2:
            self.rect_x = value & 0xFFFF
            self.rect_y = (value >> 16) & 0xFFFF
        elif offset == 3:
            self.rect_width = value & 0xFFFF
            self.rect_height = (value >> 16) & 0xFFFF
        elif offset == 4:
            self.copy_dx = _signed16(value & 0xFFFF)
            self.copy_dy = _signed16((value >> 16) & 0xFFFF)
        elif offset == 5:
            self._render(value & 0b11)
        elif offset == 7:
            self.depth_code = value & 0b11
        elif offset == 8:
            self.scissor_min = (value & 0xFFFF, (value >> 16) & 0xFFFF)
        elif offset == 9:
            self.scissor_max = (value & 0xFFFF, (value >> 16) & 0xFFFF)
        elif offset == 10:
            self.write_mask = value
        elif offset == 11:
            self.logical_op = value & 0xF
        elif offset == 12:
            self.window_origin = (value & 0xFFFF, (value >> 16) & 0xFFFF)
        elif offset == 13:
            self.fb_address = value

    def _push_fifo(self) -> None:
        if self.fifo_used >= FIFO_DEPTH:
            # Real hardware stalls the bus; a driver that lands here
            # did not honour the fifo_space protocol.
            self.fifo_overflows += 1
            self.fifo_used = FIFO_DEPTH
            return
        self.fifo_used += 1

    # ------------------------------------------------------------------
    # Framebuffer aperture
    # ------------------------------------------------------------------

    def aperture_read(self, width: int) -> int:
        if width != 32:
            raise BusError("the framebuffer aperture is 32-bit")
        index = self.fb_address
        y, x = divmod(index, self.width)
        if not 0 <= y < self.height:
            raise BusError(f"aperture address {index} outside framebuffer")
        self.fb_address += 1
        return int(self.framebuffer[y, x])

    def aperture_write(self, value: int, width: int) -> None:
        if width != 32:
            raise BusError("the framebuffer aperture is 32-bit")
        index = self.fb_address
        y, x = divmod(index, self.width)
        if not 0 <= y < self.height:
            raise BusError(f"aperture address {index} outside framebuffer")
        self.framebuffer[y, x] = value
        self.fb_address += 1

    # ------------------------------------------------------------------
    # Rendering engine
    # ------------------------------------------------------------------

    def _clip(self) -> tuple[int, int, int, int]:
        """Rectangle clipped to framebuffer and scissor: (x0, y0, x1, y1)."""
        x0 = self.rect_x + self.window_origin[0]
        y0 = self.rect_y + self.window_origin[1]
        x1 = x0 + self.rect_width
        y1 = y0 + self.rect_height
        x0 = max(x0, self.scissor_min[0], 0)
        y0 = max(y0, self.scissor_min[1], 0)
        x1 = min(x1, self.scissor_max[0], self.width)
        y1 = min(y1, self.scissor_max[1], self.height)
        if x1 <= x0 or y1 <= y0:
            return (0, 0, 0, 0)
        return (x0, y0, x1, y1)

    def _render(self, command: int) -> None:
        if command == _SYNC:
            self.fifo_used = 0
            return
        x0, y0, x1, y1 = self._clip()
        pixels = (x1 - x0) * (y1 - y0)
        self.primitives += 1
        self.bytes_touched += pixels * DEPTH_BYTES[self.depth_code]
        if command == _FILL:
            self.framebuffer[y0:y1, x0:x1] = self.block_color
            self.pixels_filled += pixels
        elif command == _COPY:
            self._copy(x0, y0, x1, y1)
            self.pixels_copied += pixels
        else:
            raise BusError(f"unknown render command {command:#04b}")

    def _copy(self, x0: int, y0: int, x1: int, y1: int) -> None:
        sx0, sy0 = x0 + self.copy_dx, y0 + self.copy_dy
        sx1, sy1 = x1 + self.copy_dx, y1 + self.copy_dy
        if not (0 <= sx0 and sx1 <= self.width and
                0 <= sy0 and sy1 <= self.height):
            raise BusError("copy source rectangle outside framebuffer")
        self.framebuffer[y0:y1, x0:x1] = \
            self.framebuffer[sy0:sy1, sx0:sx1].copy()


class Permedia2Aperture:
    """Bus adapter for the auto-incrementing framebuffer window."""

    def __init__(self, gpu: Permedia2Model):
        self.gpu = gpu

    def io_read(self, offset: int, width: int) -> int:
        if offset != 0:
            raise BusError("the aperture decodes a single address")
        return self.gpu.aperture_read(width)

    def io_write(self, offset: int, value: int, width: int) -> None:
        if offset != 0:
            raise BusError("the aperture decodes a single address")
        self.gpu.aperture_write(value, width)


def _signed16(value: int) -> int:
    return value - 0x10000 if value >= 0x8000 else value
