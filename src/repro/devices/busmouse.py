"""Behavioural model of the Logitech Busmouse controller.

The register protocol follows the original Linux ``logibusmouse``
driver fragment reproduced in Figure 2 of the paper:

========  =====  ====================================================
offset    dir    meaning
========  =====  ====================================================
0         read   data port — one nibble of the motion counters,
                 selected by the index register; the top three bits of
                 the ``y_high`` nibble carry the button state
1         r/w    signature register (used for device detection: the
                 driver writes a byte and reads it back)
2         write  control port: bit 7 set → bits 6..5 select the data
                 nibble (0 = x_low, 1 = x_high, 2 = y_low, 3 = y_high);
                 bit 7 clear → bit 4 disables (1) / enables (0) the
                 interrupt; enabling also ends the read cycle and
                 clears the motion counters
3         write  configuration register (0x91 = configuration mode,
                 0x90 = default mode)
========  =====  ====================================================

The model accumulates motion injected by the test harness through
:meth:`move` and :meth:`set_buttons`; counters are latched for the
duration of a read cycle and cleared when the driver re-enables the
interrupt, which is exactly the protocol both the hand-written and the
Devil-based drivers follow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bus import BusError

#: Size of the I/O window the mouse decodes.
REGION_SIZE = 4

_DATA = 0
_SIGNATURE = 1
_CONTROL = 2
_CONFIG = 3

#: Nibble selectors (values of control-port bits 6..5).
_X_LOW, _X_HIGH, _Y_LOW, _Y_HIGH = 0, 1, 2, 3


@dataclass
class BusmouseModel:
    """Simulated Logitech busmouse."""

    #: Pending motion since the last completed read cycle.
    pending_dx: int = 0
    pending_dy: int = 0
    #: Current button bits (bit 2 = left, 1 = middle, 0 = right), in
    #: the already-decoded convention of the paper's ``buttons``
    #: variable (Figure 1 reads them straight out of ``y_high[7..5]``).
    buttons: int = 0

    signature: int = 0
    config: int = 0
    interrupt_disabled: bool = True
    index: int = 0

    #: Counters latched for the current read cycle.
    latched_dx: int = 0
    latched_dy: int = 0
    _cycle_open: bool = field(default=False, repr=False)

    #: Number of interrupts the device would have raised.
    interrupts_raised: int = 0

    # ------------------------------------------------------------------
    # Harness-side API
    # ------------------------------------------------------------------

    def move(self, dx: int, dy: int) -> None:
        """Inject relative motion (what the ball would report)."""
        self.pending_dx += dx
        self.pending_dy += dy
        if not self.interrupt_disabled:
            self.interrupts_raised += 1

    def set_buttons(self, buttons: int) -> None:
        """Set the three button bits."""
        if not 0 <= buttons <= 0b111:
            raise ValueError(f"button bits out of range: {buttons}")
        self.buttons = buttons
        if not self.interrupt_disabled:
            self.interrupts_raised += 1

    # ------------------------------------------------------------------
    # Bus interface
    # ------------------------------------------------------------------

    def io_read(self, offset: int, width: int) -> int:
        if width != 8:
            raise BusError(f"busmouse only decodes 8-bit accesses, "
                           f"got {width}")
        if offset == _DATA:
            return self._read_data()
        if offset == _SIGNATURE:
            return self.signature
        raise BusError(f"busmouse offset {offset} is write-only "
                       f"or unmapped for reads")

    def io_write(self, offset: int, value: int, width: int) -> None:
        if width != 8:
            raise BusError(f"busmouse only decodes 8-bit accesses, "
                           f"got {width}")
        if offset == _SIGNATURE:
            self.signature = value
        elif offset == _CONTROL:
            self._write_control(value)
        elif offset == _CONFIG:
            self.config = value
        else:
            raise BusError(f"busmouse offset {offset} is read-only "
                           f"or unmapped for writes")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _latch_if_needed(self) -> None:
        if not self._cycle_open:
            self.latched_dx = self.pending_dx
            self.latched_dy = self.pending_dy
            self._cycle_open = True

    def _read_data(self) -> int:
        self._latch_if_needed()
        dx = self.latched_dx & 0xFF
        dy = self.latched_dy & 0xFF
        if self.index == _X_LOW:
            return dx & 0x0F
        if self.index == _X_HIGH:
            return (dx >> 4) & 0x0F
        if self.index == _Y_LOW:
            return dy & 0x0F
        # y_high: buttons in bits 7..5, the high motion nibble below.
        return ((self.buttons & 0b111) << 5) | ((dy >> 4) & 0x0F)

    def _write_control(self, value: int) -> None:
        if value & 0x80:
            self.index = (value >> 5) & 0b11
            return
        self.interrupt_disabled = bool(value & 0x10)
        if not self.interrupt_disabled and self._cycle_open:
            # End of read cycle: consume the latched motion.
            self.pending_dx -= self.latched_dx
            self.pending_dy -= self.latched_dy
            self.latched_dx = 0
            self.latched_dy = 0
            self._cycle_open = False
