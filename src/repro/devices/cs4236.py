"""Behavioural model of the Crystal CS4236B sound controller.

The paper calls this chip "one of the most complex" it studied, because
of its doubly-indexed extended registers: the Windows Sound System
index register (IA, port 0) selects one of 32 indexed registers behind
the data port (port 1); indexed register **I23** doubles as a gate to
18 further *extended* registers.  Writing I23 with the XRAE bit set
latches the extended address (the XA field, split across bits 2 and
7..4) and converts I23 into an extended **data** register: the next
accesses to the data port with IA = 23 hit the extended register
instead.  Writing the control register converts I23 back into an
address register.

The model mirrors this automaton with an explicit ``extended_mode``
flag — the hardware counterpart of the Devil specification's private
memory variable ``xm``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bus import BusError

REGION_SIZE = 2

#: Extended register indices that exist on the CS4236B.
EXTENDED_INDICES = frozenset(range(18)) | {25}

#: Reset value of X25 (chip version/revision identifier).
VERSION_ID = 0b10101011

#: Reset value of the I12 ID field (CS4236B mode-2 codec id).
CHIP_ID = 0b1010


@dataclass
class Cs4236Model:
    """Simulated CS4236B (WSS codec part + extended registers)."""

    index_address: int = 0          # IA bits 4..0
    mode_change_enable: bool = False
    indexed: list[int] = field(
        default_factory=lambda: [0] * 32)
    extended: dict[int, int] = field(
        default_factory=lambda: {i: 0 for i in EXTENDED_INDICES})
    #: True while I23 acts as an extended data register (the xm state).
    extended_mode: bool = False
    extended_address: int = 0       # latched XA

    def __post_init__(self) -> None:
        self.indexed[12] = CHIP_ID | 0b01000000  # mode-2 bit set
        self.extended[25] = VERSION_ID

    # ------------------------------------------------------------------
    # Bus interface
    # ------------------------------------------------------------------

    def io_read(self, offset: int, width: int) -> int:
        if width != 8:
            raise BusError(f"CS4236B only decodes 8-bit accesses, "
                           f"got {width}")
        if offset == 0:
            return self.index_address | \
                (0b01000000 if self.mode_change_enable else 0)
        if offset == 1:
            return self._data_read()
        raise BusError(f"CS4236B has no offset {offset}")

    def io_write(self, offset: int, value: int, width: int) -> None:
        if width != 8:
            raise BusError(f"CS4236B only decodes 8-bit accesses, "
                           f"got {width}")
        if offset == 0:
            self.index_address = value & 0b11111
            self.mode_change_enable = bool(value & 0b01000000)
            # Any control write converts I23 back to an address register.
            self.extended_mode = False
        elif offset == 1:
            self._data_write(value)
        else:
            raise BusError(f"CS4236B has no offset {offset}")

    # ------------------------------------------------------------------
    # Data port (indexed / extended access)
    # ------------------------------------------------------------------

    def _check_extended_address(self) -> int:
        if self.extended_address not in EXTENDED_INDICES:
            raise BusError(
                f"extended register X{self.extended_address} does not "
                f"exist on the CS4236B")
        return self.extended_address

    def _data_read(self) -> int:
        if self.extended_mode and self.index_address == 23:
            return self.extended[self._check_extended_address()]
        return self.indexed[self.index_address]

    def _data_write(self, value: int) -> None:
        if self.extended_mode and self.index_address == 23:
            self.extended[self._check_extended_address()] = value
            return
        if self.index_address == 23:
            self.indexed[23] = value & 0b11111101  # bit 1 always zero
            if value & 0b1000:  # XRAE: latch XA, enter extended mode
                self.extended_address = (((value >> 2) & 1) << 4) | \
                    ((value >> 4) & 0b1111)
                self.extended_mode = True
            return
        self.indexed[self.index_address] = value
