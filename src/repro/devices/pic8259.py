"""Behavioural model of the Intel 8259A programmable interrupt controller.

The 8259A is the paper's showcase for control-flow based serialization:
three of its four initialization command words (ICW2..ICW4) are mapped
to a single port, and the device decodes them purely from the *order*
in which they arrive after ICW1.  This model implements that automaton
faithfully:

* a write to port 0 with bit 4 set starts an initialization sequence
  (ICW1) and arms the expectation of ICW2, then ICW3 (unless ICW1
  declared single mode), then ICW4 (only if ICW1's IC4 bit was set);
* while the sequence is open, writes to port 1 are consumed by it;
  afterwards port 1 is the interrupt mask register (OCW1);
* writes to port 0 with bit 4 clear are OCW2 (bit 3 clear — EOI
  commands) or OCW3 (bit 3 set — IRR/ISR read selection, polling);
* reads of port 0 deliver IRR or ISR as selected by the last OCW3.

The harness side offers :meth:`raise_irq` and :meth:`acknowledge` so
driver tests can exercise a complete interrupt life cycle: raise →
acknowledge (vector computed from ICW2) → in-service → EOI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bus import BusError

REGION_SIZE = 2

# States of the initialization automaton.
_READY = "ready"
_EXPECT_ICW2 = "expect-icw2"
_EXPECT_ICW3 = "expect-icw3"
_EXPECT_ICW4 = "expect-icw4"


@dataclass
class Pic8259Model:
    """Simulated 8259A (master configuration)."""

    state: str = _READY
    single: bool = False
    needs_icw4: bool = False
    level_triggered: bool = False
    vector_base: int = 0
    slave_mask: int = 0
    icw4: int = 0

    irr: int = 0          # interrupt request register
    isr: int = 0          # in-service register
    imr: int = 0xFF       # interrupt mask register (all masked at reset)
    read_isr_selected: bool = False
    special_mask_mode: bool = False
    poll_mode: bool = False

    #: History of completed init sequences, for test assertions.
    init_log: list[tuple[int, ...]] = field(default_factory=list)
    _current_init: list[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Bus interface
    # ------------------------------------------------------------------

    def io_read(self, offset: int, width: int) -> int:
        if width != 8:
            raise BusError(f"8259A only decodes 8-bit accesses, got {width}")
        if offset == 0:
            if self.poll_mode:
                self.poll_mode = False
                return self._poll_byte()
            return self.isr if self.read_isr_selected else self.irr
        if offset == 1:
            return self.imr
        raise BusError(f"8259A has no offset {offset}")

    def io_write(self, offset: int, value: int, width: int) -> None:
        if width != 8:
            raise BusError(f"8259A only decodes 8-bit accesses, got {width}")
        if offset == 0:
            if value & 0x10:
                self._start_init(value)
            elif value & 0x08:
                self._ocw3(value)
            else:
                self._ocw2(value)
        elif offset == 1:
            self._write_port1(value)
        else:
            raise BusError(f"8259A has no offset {offset}")

    # ------------------------------------------------------------------
    # Initialization automaton
    # ------------------------------------------------------------------

    def _start_init(self, icw1: int) -> None:
        self.single = bool(icw1 & 0b10)
        self.needs_icw4 = bool(icw1 & 0b1)
        self.level_triggered = bool(icw1 & 0b1000)
        self.state = _EXPECT_ICW2
        self._current_init = [icw1]
        # ICW1 resets IMR and edge-detect circuitry on the real part.
        self.imr = 0
        self.irr = 0
        self.isr = 0

    def _write_port1(self, value: int) -> None:
        if self.state == _EXPECT_ICW2:
            self.vector_base = value & 0xF8
            self._current_init.append(value)
            if not self.single:
                self.state = _EXPECT_ICW3
            elif self.needs_icw4:
                self.state = _EXPECT_ICW4
            else:
                self._finish_init()
        elif self.state == _EXPECT_ICW3:
            self.slave_mask = value
            self._current_init.append(value)
            if self.needs_icw4:
                self.state = _EXPECT_ICW4
            else:
                self._finish_init()
        elif self.state == _EXPECT_ICW4:
            self.icw4 = value
            self._current_init.append(value)
            self._finish_init()
        else:
            self.imr = value  # OCW1

    def _finish_init(self) -> None:
        self.state = _READY
        self.init_log.append(tuple(self._current_init))
        self._current_init = []

    # ------------------------------------------------------------------
    # Operational command words
    # ------------------------------------------------------------------

    def _ocw2(self, value: int) -> None:
        kind = (value >> 5) & 0b111
        level = value & 0b111
        if kind == 0b001:  # non-specific EOI
            self._clear_highest_isr()
        elif kind == 0b011:  # specific EOI
            self.isr &= ~(1 << level)
        elif kind == 0b101:  # rotate on non-specific EOI
            self._clear_highest_isr()
        elif kind == 0b111:  # rotate on specific EOI
            self.isr &= ~(1 << level)
        elif kind == 0b010:  # no-op
            pass
        else:
            raise BusError(f"unsupported OCW2 command {kind:#05b}")

    def _ocw3(self, value: int) -> None:
        if value & 0b10:
            self.read_isr_selected = bool(value & 0b1)
        self.poll_mode = bool(value & 0b100)
        smm = (value >> 5) & 0b11
        if smm == 0b11:
            self.special_mask_mode = True
        elif smm == 0b10:
            self.special_mask_mode = False

    def _clear_highest_isr(self) -> None:
        for level in range(8):
            if self.isr & (1 << level):
                self.isr &= ~(1 << level)
                return

    def _poll_byte(self) -> int:
        pending = self.irr & ~self.imr
        for level in range(8):
            if pending & (1 << level):
                return 0x80 | level
        return 0

    # ------------------------------------------------------------------
    # Harness-side API
    # ------------------------------------------------------------------

    def raise_irq(self, line: int) -> None:
        """Assert interrupt request line ``line`` (0..7)."""
        if not 0 <= line <= 7:
            raise ValueError(f"IRQ line {line} out of range")
        self.irr |= 1 << line

    def lower_irq(self, line: int) -> None:
        """Deassert a level-triggered request line."""
        self.irr &= ~(1 << line)

    def has_pending(self) -> bool:
        return bool(self.irr & ~self.imr)

    def acknowledge(self) -> int | None:
        """CPU INTA cycle: returns the vector, or None if nothing pends.

        The highest-priority unmasked request moves from IRR to ISR and
        the vector is ``vector_base + line`` (8086 mode).
        """
        pending = self.irr & ~self.imr
        for line in range(8):
            if pending & (1 << line):
                self.irr &= ~(1 << line)
                if not (self.icw4 & 0b10):  # not AEOI
                    self.isr |= 1 << line
                return self.vector_base + line
        return None
