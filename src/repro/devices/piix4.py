"""Behavioural model of the Intel PIIX4 busmaster IDE function.

The PIIX4 executes posted ``READ_DMA``/``WRITE_DMA`` commands on behalf
of the disk: the driver builds a Physical Region Descriptor (PRD) table
in system memory, points the descriptor-table-pointer register at it,
and sets the start bit.  The busmaster walks the table, moves the data
between memory and the disk, raises the interrupt bit in its status
register, and the disk asserts INTRQ.

Register layout (offsets within the busmaster I/O window):

======  =====  ==========================================
offset  width  register
======  =====  ==========================================
0       8      command: bit 0 start/stop, bit 3 direction
                (1 = device-to-memory, i.e. a disk read)
2       8      status: bit 0 active, bit 1 error (RW1C),
                bit 2 interrupt (RW1C), bits 5/6 drive
                DMA-capable
4       32     descriptor table pointer (PRD table)
======  =====  ==========================================

Each PRD entry is 8 bytes little-endian: 32-bit memory address, 16-bit
byte count (0 means 64 KiB), 16-bit flags with bit 15 marking the last
entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bus import BusError
from .ide import IdeDiskModel

REGION_SIZE = 8

_START = 0b0001
_DIRECTION_TO_MEMORY = 0b1000

_STATUS_ACTIVE = 0b001
_STATUS_ERROR = 0b010
_STATUS_IRQ = 0b100


@dataclass
class Piix4Model:
    """Simulated PIIX4 busmaster, bound to one disk and system memory."""

    disk: IdeDiskModel
    memory: bytearray

    command: int = 0
    status: int = 0b0110_0000  # both drives DMA-capable
    prd_pointer: int = 0

    #: Total bytes moved by DMA (the timing model charges these at
    #: UDMA bandwidth rather than per-I/O-operation cost).
    bytes_transferred: int = 0
    transfers_completed: int = 0

    # ------------------------------------------------------------------
    # Bus interface
    # ------------------------------------------------------------------

    def io_read(self, offset: int, width: int) -> int:
        if offset == 0 and width == 8:
            return self.command
        if offset == 2 and width == 8:
            return self.status
        if offset == 4 and width == 32:
            return self.prd_pointer
        raise BusError(f"PIIX4 has no {width}-bit register at offset "
                       f"{offset}")

    def io_write(self, offset: int, value: int, width: int) -> None:
        if offset == 0 and width == 8:
            was_started = self.command & _START
            self.command = value
            if value & _START and not was_started:
                self._run_transfer()
            return
        if offset == 2 and width == 8:
            # Error and interrupt bits are write-1-to-clear; the
            # capable bits are plain read-write.
            self.status &= ~(value & (_STATUS_ERROR | _STATUS_IRQ))
            self.status = (self.status & ~0b0110_0000) | \
                (value & 0b0110_0000)
            return
        if offset == 4 and width == 32:
            self.prd_pointer = value
            return
        raise BusError(f"PIIX4 has no {width}-bit register at offset "
                       f"{offset}")

    # ------------------------------------------------------------------
    # DMA engine
    # ------------------------------------------------------------------

    def _read_prd_entries(self) -> list[tuple[int, int]]:
        entries: list[tuple[int, int]] = []
        position = self.prd_pointer
        while True:
            if position + 8 > len(self.memory):
                raise BusError(
                    f"PRD table at {position:#010x} runs past the end of "
                    f"memory")
            address = int.from_bytes(self.memory[position:position + 4],
                                     "little")
            count = int.from_bytes(self.memory[position + 4:position + 6],
                                   "little")
            flags = int.from_bytes(self.memory[position + 6:position + 8],
                                   "little")
            entries.append((address, count if count else 0x10000))
            position += 8
            if flags & 0x8000:
                return entries
            if len(entries) > 8192:
                raise BusError("unterminated PRD table")

    def _run_transfer(self) -> None:
        if self.disk.dma_request is None:
            # Starting the engine with nothing posted is a driver bug.
            self.status |= _STATUS_ERROR
            self.command &= ~_START
            return
        self.status |= _STATUS_ACTIVE
        to_memory = bool(self.command & _DIRECTION_TO_MEMORY)
        direction = self.disk.dma_request.direction
        if to_memory != (direction == "read"):
            self.status |= _STATUS_ERROR
            self.status &= ~_STATUS_ACTIVE
            self.command &= ~_START
            return
        for address, count in self._read_prd_entries():
            if address + count > len(self.memory):
                raise BusError(
                    f"PRD entry [{address:#010x}, +{count}) outside memory")
            if to_memory:
                data = self.disk.dma_read(count)
                self.memory[address:address + len(data)] = data
            else:
                self.disk.dma_write(bytes(self.memory[address:
                                                      address + count]))
            self.bytes_transferred += count
            if self.disk.dma_request is None:
                break  # the posted request is fully served
        self.status &= ~_STATUS_ACTIVE
        self.status |= _STATUS_IRQ
        self.command &= ~_START
        self.transfers_completed += 1
