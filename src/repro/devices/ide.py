"""Behavioural model of an IDE (ATA) disk with PIO and DMA transfer.

This is the substrate behind the paper's Table 2: the IDE throughput
comparison.  The model implements the ATA taskfile protocol precisely
enough that both the hand-written driver and the Devil-generated stubs
drive *identical* device behaviour:

* the taskfile registers (features, sector count, LBA bytes,
  device/head with its forced bits, command/status, device control,
  alternate status);
* PIO reads/writes with **R sectors per DRQ block**: ``SET_MULTIPLE``
  plus ``READ_MULTIPLE``/``WRITE_MULTIPLE`` transfer R sectors per
  interrupt, the plain commands one — the paper sweeps R over
  {1, 8, 16};
* 16-bit and 32-bit data-port accesses (the paper's "I/O size" axis);
* ``READ_DMA``/``WRITE_DMA``, which post a request the PIIX4 busmaster
  model executes through a PRD table;
* interrupt accounting: :attr:`interrupts_raised` counts every INTRQ
  assertion, and reading the status register acknowledges the line.

The media itself is a plain :class:`bytearray` of 512-byte sectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bus import BusError

SECTOR_SIZE = 512
REGION_SIZE = 8          # data + taskfile window (offsets 0..7)

# Status register bits.
ERR, IDX, CORR, DRQ, DSC, DF, DRDY, BSY = (1 << i for i in range(8))

# Command opcodes.
CMD_READ_SECTORS = 0x20
CMD_WRITE_SECTORS = 0x30
CMD_READ_MULTIPLE = 0xC4
CMD_WRITE_MULTIPLE = 0xC5
CMD_SET_MULTIPLE = 0xC6
CMD_READ_DMA = 0xC8
CMD_WRITE_DMA = 0xCA
CMD_IDENTIFY = 0xEC


@dataclass
class DmaRequest:
    """A posted DMA command awaiting the busmaster."""

    direction: str          # "read" (disk->memory) or "write"
    lba: int
    sectors: int


@dataclass
class IdeDiskModel:
    """Simulated IDE disk."""

    total_sectors: int = 2048
    store: bytearray = field(default=None)  # type: ignore[assignment]

    features: int = 0
    nsect: int = 0
    lba_low: int = 0
    lba_mid: int = 0
    lba_high: int = 0
    device: int = 0xA0
    control: int = 0

    status: int = DRDY | DSC
    error: int = 0
    multiple_count: int = 1

    #: Cumulative INTRQ assertions (the per-interrupt axis of Table 2).
    interrupts_raised: int = 0
    irq_pending: bool = False

    dma_request: DmaRequest | None = None

    # Current PIO transfer state.
    _buffer: bytearray = field(default_factory=bytearray, repr=False)
    _buffer_pos: int = 0
    _direction: str = ""
    _current_lba: int = 0
    _remaining: int = 0
    _block_sectors: int = 1

    def __post_init__(self) -> None:
        if self.store is None:
            self.store = bytearray(self.total_sectors * SECTOR_SIZE)
        elif len(self.store) != self.total_sectors * SECTOR_SIZE:
            raise ValueError("store size does not match total_sectors")

    # ------------------------------------------------------------------
    # Bus interface
    # ------------------------------------------------------------------

    def io_read(self, offset: int, width: int) -> int:
        if offset == 0:
            if width not in (16, 32):
                raise BusError(
                    f"IDE data port takes 16/32-bit accesses, got {width}")
            return self._data_read(width)
        if width != 8:
            raise BusError(f"IDE taskfile registers are 8-bit, got {width}")
        if offset == 1:
            return self.error
        if offset == 2:
            return self.nsect
        if offset == 3:
            return self.lba_low
        if offset == 4:
            return self.lba_mid
        if offset == 5:
            return self.lba_high
        if offset == 6:
            return self.device
        if offset == 7:
            self.irq_pending = False  # reading status acks INTRQ
            return self.status
        raise BusError(f"IDE has no readable offset {offset}")

    def io_write(self, offset: int, value: int, width: int) -> None:
        if offset == 0:
            if width not in (16, 32):
                raise BusError(
                    f"IDE data port takes 16/32-bit accesses, got {width}")
            self._data_write(value, width)
            return
        if width != 8:
            raise BusError(f"IDE taskfile registers are 8-bit, got {width}")
        if offset == 1:
            self.features = value
        elif offset == 2:
            self.nsect = value
        elif offset == 3:
            self.lba_low = value
        elif offset == 4:
            self.lba_mid = value
        elif offset == 5:
            self.lba_high = value
        elif offset == 6:
            self.device = value
        elif offset == 7:
            self._execute(value)
        else:
            raise BusError(f"IDE has no writable offset {offset}")

    # Control block (mapped separately through IdeControlPort).

    def control_read(self) -> int:
        return self.status  # alternate status: same bits, no INTRQ ack

    def control_write(self, value: int) -> None:
        self.control = value
        if value & 0b100:  # SRST
            self.soft_reset()

    def soft_reset(self) -> None:
        self.status = DRDY | DSC
        self.error = 0
        self._direction = ""
        self._buffer = bytearray()
        self._buffer_pos = 0
        self._remaining = 0
        self.dma_request = None
        self.irq_pending = False

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------

    @property
    def _lba(self) -> int:
        return ((self.device & 0x0F) << 24) | (self.lba_high << 16) | \
            (self.lba_mid << 8) | self.lba_low

    @property
    def _sector_count(self) -> int:
        return self.nsect if self.nsect != 0 else 256

    def _check_range(self, lba: int, count: int) -> None:
        if lba + count > self.total_sectors:
            self.error = 0x10  # IDNF
            self.status |= ERR
            raise BusError(
                f"access beyond end of disk: lba={lba} count={count} "
                f"size={self.total_sectors}")

    def _execute(self, opcode: int) -> None:
        self.status &= ~(ERR | DRQ)
        self.error = 0
        if opcode in (CMD_READ_SECTORS, CMD_READ_MULTIPLE):
            block = self.multiple_count if opcode == CMD_READ_MULTIPLE else 1
            self._begin_pio("read", block)
        elif opcode in (CMD_WRITE_SECTORS, CMD_WRITE_MULTIPLE):
            block = self.multiple_count if opcode == CMD_WRITE_MULTIPLE else 1
            self._begin_pio("write", block)
        elif opcode == CMD_SET_MULTIPLE:
            if self.nsect == 0 or self.nsect > 128:
                self.status |= ERR
                self.error = 0x04  # ABRT
            else:
                self.multiple_count = self.nsect
        elif opcode == CMD_READ_DMA:
            self._check_range(self._lba, self._sector_count)
            self.dma_request = DmaRequest("read", self._lba,
                                          self._sector_count)
            self.status |= BSY
        elif opcode == CMD_WRITE_DMA:
            self._check_range(self._lba, self._sector_count)
            self.dma_request = DmaRequest("write", self._lba,
                                          self._sector_count)
            self.status |= BSY
        elif opcode == CMD_IDENTIFY:
            self._buffer = bytearray(self.identify_block())
            self._buffer_pos = 0
            self._direction = "read"
            self._remaining = 0
            self.status |= DRQ
            self._raise_irq()
        else:
            self.status |= ERR
            self.error = 0x04  # ABRT

    def _begin_pio(self, direction: str, block_sectors: int) -> None:
        count = self._sector_count
        self._check_range(self._lba, count)
        self._direction = direction
        self._current_lba = self._lba
        self._remaining = count
        self._block_sectors = block_sectors
        if direction == "read":
            self._load_read_block()
            self._raise_irq()  # data ready
        else:
            self._open_write_block()
            # ATA: the first write DRQ comes without an interrupt.

    def _raise_irq(self) -> None:
        self.interrupts_raised += 1
        self.irq_pending = True

    # ------------------------------------------------------------------
    # PIO data path
    # ------------------------------------------------------------------

    def _load_read_block(self) -> None:
        sectors = min(self._block_sectors, self._remaining)
        start = self._current_lba * SECTOR_SIZE
        self._buffer = bytearray(
            self.store[start:start + sectors * SECTOR_SIZE])
        self._buffer_pos = 0
        self._current_lba += sectors
        self._remaining -= sectors
        self.status |= DRQ

    def _open_write_block(self) -> None:
        sectors = min(self._block_sectors, self._remaining)
        self._buffer = bytearray(sectors * SECTOR_SIZE)
        self._buffer_pos = 0
        self.status |= DRQ

    def _data_read(self, width: int) -> int:
        if not self.status & DRQ or self._direction != "read":
            raise BusError("data-port read without pending read DRQ")
        size = width // 8
        chunk = self._buffer[self._buffer_pos:self._buffer_pos + size]
        self._buffer_pos += size
        value = int.from_bytes(chunk, "little")
        if self._buffer_pos >= len(self._buffer):
            if self._remaining > 0:
                self._load_read_block()
                self._raise_irq()
            else:
                self.status &= ~DRQ
                self._direction = ""
        return value

    def _data_write(self, value: int, width: int) -> None:
        if not self.status & DRQ or self._direction != "write":
            raise BusError("data-port write without pending write DRQ")
        size = width // 8
        self._buffer[self._buffer_pos:self._buffer_pos + size] = \
            value.to_bytes(size, "little")
        self._buffer_pos += size
        if self._buffer_pos >= len(self._buffer):
            self._commit_write_block()

    def _commit_write_block(self) -> None:
        sectors = len(self._buffer) // SECTOR_SIZE
        start = self._current_lba * SECTOR_SIZE
        self.store[start:start + len(self._buffer)] = self._buffer
        self._current_lba += sectors
        self._remaining -= sectors
        self._raise_irq()  # block committed to media
        if self._remaining > 0:
            self._open_write_block()
        else:
            self.status &= ~DRQ
            self._direction = ""

    # ------------------------------------------------------------------
    # DMA data path (driven by the PIIX4 model)
    # ------------------------------------------------------------------

    def dma_read(self, byte_count: int) -> bytes:
        """Busmaster pulls ``byte_count`` bytes of the posted read."""
        request = self._require_dma("read")
        start = request.lba * SECTOR_SIZE
        data = bytes(self.store[start:start + byte_count])
        self._consume_dma(request, byte_count)
        return data

    def dma_write(self, data: bytes) -> None:
        """Busmaster pushes bytes of the posted write."""
        request = self._require_dma("write")
        start = request.lba * SECTOR_SIZE
        self.store[start:start + len(data)] = data
        self._consume_dma(request, len(data))

    def _require_dma(self, direction: str) -> DmaRequest:
        if self.dma_request is None or \
                self.dma_request.direction != direction:
            raise BusError(f"no posted {direction} DMA request")
        return self.dma_request

    def _consume_dma(self, request: DmaRequest, byte_count: int) -> None:
        sectors = byte_count // SECTOR_SIZE
        request.lba += sectors
        request.sectors -= sectors
        if request.sectors <= 0:
            self.dma_request = None
            self.status &= ~BSY
            self._raise_irq()

    # ------------------------------------------------------------------
    # Identify data
    # ------------------------------------------------------------------

    def identify_block(self) -> bytes:
        """256 words of IDENTIFY DEVICE data (geometry + model name)."""
        words = [0] * 256
        words[0] = 0x0040                    # fixed drive
        words[1] = max(self.total_sectors // (16 * 63), 1)  # cylinders
        words[3] = 16                        # heads
        words[6] = 63                        # sectors/track
        words[47] = 0x8000 | 16              # max multiple: 16
        words[49] = 0x0300                   # LBA + DMA capable
        words[60] = self.total_sectors & 0xFFFF
        words[61] = (self.total_sectors >> 16) & 0xFFFF
        model = "DEVIL REPRO DISK".ljust(40)
        for i in range(20):                  # words 27..46, byte-swapped
            words[27 + i] = (ord(model[2 * i]) << 8) | ord(model[2 * i + 1])
        out = bytearray()
        for word in words:
            out += word.to_bytes(2, "little")
        return bytes(out)


class IdeControlPort:
    """Bus adapter for the control block (devctl / alternate status)."""

    def __init__(self, disk: IdeDiskModel):
        self.disk = disk

    def io_read(self, offset: int, width: int) -> int:
        if offset != 0 or width != 8:
            raise BusError("IDE control block is one 8-bit register")
        return self.disk.control_read()

    def io_write(self, offset: int, value: int, width: int) -> None:
        if offset != 0 or width != 8:
            raise BusError("IDE control block is one 8-bit register")
        self.disk.control_write(value)
