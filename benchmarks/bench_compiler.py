"""Compiler performance: front-end and backends over the spec library.

Not a paper table, but the practical cost a driver build pays per
specification: parse + check, then each backend.
"""

import pytest

from repro.devil.compiler import compile_spec
from repro.specs import SPEC_NAMES, load_source


@pytest.mark.parametrize("name", SPEC_NAMES)
def test_compile_spec(benchmark, name):
    source = load_source(name)
    benchmark(compile_spec, source)


def test_emit_c_busmouse(benchmark):
    spec = compile_spec(load_source("busmouse"))
    benchmark(spec.emit_c)


def test_emit_python_ne2000(benchmark):
    spec = compile_spec(load_source("ne2000"))
    benchmark(spec.emit_python)
