"""Shared helpers for the benchmark harness.

Every ``bench_table*.py`` file regenerates one table or figure of the
paper.  Heavy experiments run exactly once (``benchmark.pedantic`` with
one round); the reproduced table is printed and also written to
``results/<name>.txt`` — plus a machine-readable ``results/<name>.json``
companion so downstream tooling (CI trend lines, EXPERIMENTS.md
generators) does not have to parse the human-oriented text.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def environment() -> dict:
    """The machine context a benchmark number is meaningless without.

    Recorded into every ``results/BENCH_*.json`` so a reader can tell
    a 1-CPU CI container's scaling numbers from a real machine's —
    the fleet benchmarks' speedups are functions of ``cpu_count``.
    """
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
    }


def record(name: str, content: str, data: object = None) -> None:
    """Print a reproduced table and persist it under results/.

    ``results/<name>.txt`` holds the rendered table; ``<name>.json``
    holds ``{"name", "text", "environment"}`` plus the optional
    structured ``data`` payload (plain dicts/lists/numbers) when the
    caller provides one.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(content + "\n")
    payload: dict[str, object] = {"name": name, "text": content,
                                  "environment": environment()}
    if data is not None:
        payload["data"] = data
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n=== {name} ===")
    print(content)
