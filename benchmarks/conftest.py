"""Shared helpers for the benchmark harness.

Every ``bench_table*.py`` file regenerates one table or figure of the
paper.  Heavy experiments run exactly once (``benchmark.pedantic`` with
one round); the reproduced table is printed and also written to
``results/<name>.txt`` so EXPERIMENTS.md can reference stable outputs.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def record(name: str, content: str) -> None:
    """Print a reproduced table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(content + "\n")
    print(f"\n=== {name} ===")
    print(content)
