"""Ablation: write transactions (§6's factorized communication).

Table 2 charges the Devil IDE driver 3 extra I/O operations per command
because independent variables of shared registers are written one stub
at a time.  The runtime's transaction block coalesces them; this bench
shows command setup dropping from 10 operations to hand-written parity
(7), exactly the optimization the paper's future-work section proposes
to add to the compiler.
"""

from conftest import record

from repro.bus import Bus
from repro.devices.ide import REGION_SIZE, IdeControlPort, IdeDiskModel
from repro.drivers import CStyleIdeDriver, DevilIdeDriver


def _machine(driver_cls):
    bus = Bus()
    disk = IdeDiskModel(total_sectors=16)
    bus.map_device(0x1F0, REGION_SIZE, disk, "ide")
    bus.map_device(0x3F6, 1, IdeControlPort(disk), "ide-ctrl")
    return bus, disk, driver_cls(bus)


def _issue_ops(driver_kind: str) -> int:
    if driver_kind == "standard":
        bus, _, driver = _machine(CStyleIdeDriver)
        before = bus.accounting.total_ops
        driver._issue(0x20, 0, 1)
        return bus.accounting.total_ops - before
    bus, _, driver = _machine(DevilIdeDriver)
    before = bus.accounting.total_ops
    if driver_kind == "devil":
        driver._issue("READ_SECTORS", 0, 1)
    else:  # devil+transaction
        with driver.dev.transaction():
            driver.dev.set_srst(False)
            driver.dev.set_irq_disabled(False)
            driver.dev.set_lba_mode(True)
            driver.dev.set_drive("MASTER")
            driver.dev.set_head(0)
            driver.dev.set_sector_count(1)
            driver.dev.set_lba_low(0)
            driver.dev.set_lba_mid(0)
            driver.dev.set_lba_high(0)
        driver.dev.set_command("READ_SECTORS")
    return bus.accounting.total_ops - before


def test_transaction_ablation(benchmark):
    def run():
        return {kind: _issue_ops(kind)
                for kind in ("standard", "devil", "devil+transaction")}
    ops = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_transaction",
           "IDE command setup, I/O operations:\n"
           f"  hand-written C:        {ops['standard']}\n"
           f"  Devil stubs:           {ops['devil']}\n"
           f"  Devil + transaction:   {ops['devil+transaction']}\n"
           "(the transaction block coalesces shared-register writes,\n"
           " recovering hand-written parity — §6 future work realised)",
           data=ops)
    assert ops["standard"] == 7
    assert ops["devil"] == 10
    assert ops["devil+transaction"] == 7
