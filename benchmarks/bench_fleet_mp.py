"""Thread fleet vs process fleet on a CPU-bound request mix.

The measurement the multiprocessing backend exists for.  The request
is :func:`repro.engine.ide_sector_checksum` — one IDE sector read
followed by a pure-Python rolling checksum that holds the GIL for its
whole duration (~2 ms).  Against that mix the two backends must
diverge in a very specific way:

* the **thread** backend cannot scale: every checksum serializes on
  the GIL, so 4 workers deliver essentially the single-worker rate.
  The benchmark enforces a *ceiling*: thread speedup at 4 workers must
  stay at or below ``THREAD_CPU_CEILING`` (1.2x) — if threads ever
  "scale" on this mix, the mix has stopped being CPU-bound and the
  benchmark has stopped testing what it claims to test.
* the **process** backend shards devices across worker processes, each
  with its own interpreter and GIL, so the checksums genuinely overlap
  on a multi-core machine.  The benchmark enforces a *floor*: process
  speedup at 4 workers must reach ``PROCESS_CPU_FLOOR`` (2.0x).  The
  floor is a statement about cores — on a machine with fewer than 4
  CPUs it is physically unsatisfiable (four processes cannot out-run
  one core's worth of arithmetic), so it is enforced when
  ``os.cpu_count() >= 4`` (every CI runner) and recorded as skipped,
  with the cpu count, otherwise.

A sleeping-I/O leg rides along for contrast: under GIL-releasing port
latency the thread backend scales near-linearly while the process
backend pays IPC per request — the two legs together are the
backend-selection guide in ``docs/CONCURRENCY.md``, measured.

Exactness is enforced unconditionally on both legs: merged accounting
and byte-identical per-device end-state across every backend and
worker count.  A scheduling or merge bug fails this benchmark even on
a single-core machine where the throughput floor is waived.

Runs standalone (``python benchmarks/bench_fleet_mp.py [--quick]``,
the CI concurrency-job step) and under pytest via
:func:`test_fleet_mp_bench_quick`.  Results land in
``results/BENCH_fleet_mp.{txt,json}``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import pytest

_HERE = Path(__file__).resolve().parent
for _path in (_HERE, _HERE.parent / "src"):
    if str(_path) not in sys.path:
        sys.path.insert(0, str(_path))

from conftest import record

from repro.engine import (
    Fleet,
    ProcessFleet,
    ide_sector_checksum,
    mixed_schedule,
)

pytestmark = pytest.mark.concurrency

#: Thread speedup at 4 workers must stay at or below this on the
#: CPU-bound mix (the GIL flatline; enforced everywhere).
THREAD_CPU_CEILING = 1.2

#: Process speedup at 4 workers must reach this on the CPU-bound mix
#: (enforced when the machine has >= PROCESS_FLOOR_MIN_CPUS cores).
PROCESS_CPU_FLOOR = 2.0
PROCESS_FLOOR_MIN_CPUS = 4

WORKER_COUNTS = (1, 2, 4)

#: CPU leg: four disks, every request a GIL-holding checksum.
CPU_FLEET = ["ide"] * 4

#: I/O leg: the mixed machine of bench_fleet.py.
IO_FLEET = ["ide"] * 4 + ["permedia2"] * 4 + ["ne2000"] * 4
IO_LATENCY_US = 20.0
IO_WORD_LATENCY_US = 0.2


def _build(backend: str, devices, workers: int,
           latency_us: float = 0.0, word_latency_us: float = 0.0):
    cls = ProcessFleet if backend == "process" else Fleet
    return cls(devices, workers=workers, policy="round-robin",
               op_latency_us=latency_us,
               word_latency_us=word_latency_us)


def run_once(backend: str, devices, workers: int, schedule,
             latency_us: float = 0.0, word_latency_us: float = 0.0):
    """One timed run; returns (req/s, accounting, device states)."""
    with _build(backend, devices, workers, latency_us,
                word_latency_us) as fleet:
        start = time.perf_counter()
        fleet.run(schedule)
        elapsed = time.perf_counter() - start
        accounting = fleet.accounting
        if backend == "thread":
            accounting = accounting.snapshot()
        states = fleet.device_states()
        assert fleet.completed() == len(schedule)
    return len(schedule) / elapsed, accounting, states


def scaling_leg(devices, schedule, latency_us: float = 0.0,
                word_latency_us: float = 0.0):
    """Both backends at every worker count, with exactness checks.

    Speedups are relative to each backend's own single-worker run, so
    they isolate scaling from the (constant) IPC overhead of the
    process backend.  Every run must land identical accounting and
    byte-identical device end-state — backend and worker count may
    change *when* work happens, never *what* reaches the wire.
    """
    rows = []
    reference = None
    for backend in ("thread", "process"):
        base_rate = None
        for workers in WORKER_COUNTS:
            rate, accounting, states = run_once(
                backend, devices, workers, schedule,
                latency_us, word_latency_us)
            if reference is None:
                reference = (accounting, states)
            else:
                if accounting != reference[0]:
                    raise AssertionError(
                        f"accounting diverged ({backend}, {workers} "
                        f"workers):\n  reference: {reference[0]}\n"
                        f"  this run : {accounting}")
                if states != reference[1]:
                    diverged = sorted(
                        name for name in reference[1]
                        if states.get(name) != reference[1][name])
                    raise AssertionError(
                        f"device end-state diverged ({backend}, "
                        f"{workers} workers): {diverged}")
            if base_rate is None:
                base_rate = rate
            rows.append({"backend": backend, "workers": workers,
                         "rps": rate, "speedup": rate / base_rate})
    return rows, reference[0]


def _row(rows, backend: str, workers: int) -> dict:
    return next(row for row in rows
                if row["backend"] == backend
                and row["workers"] == workers)


def check_floors(cpu_rows, cpu_count: int):
    """(verdicts, ok) for the CPU leg's ceiling and floor."""
    verdicts = []
    ok = True

    thread4 = _row(cpu_rows, "thread", 4)
    if thread4["speedup"] <= THREAD_CPU_CEILING:
        verdicts.append(
            f"OK: thread backend flatlines on CPU-bound mix "
            f"({thread4['speedup']:.2f}x at 4 workers, ceiling "
            f"{THREAD_CPU_CEILING}x)")
    else:
        ok = False
        verdicts.append(
            f"FAIL: thread backend 'scaled' to "
            f"{thread4['speedup']:.2f}x at 4 workers (ceiling "
            f"{THREAD_CPU_CEILING}x) — the mix is no longer CPU-bound")

    process4 = _row(cpu_rows, "process", 4)
    if cpu_count < PROCESS_FLOOR_MIN_CPUS:
        verdicts.append(
            f"SKIP: process scaling floor ({PROCESS_CPU_FLOOR}x at 4 "
            f"workers) needs >= {PROCESS_FLOOR_MIN_CPUS} CPUs; this "
            f"machine has {cpu_count} (measured "
            f"{process4['speedup']:.2f}x)")
    elif process4["speedup"] >= PROCESS_CPU_FLOOR:
        verdicts.append(
            f"OK: process backend scales on CPU-bound mix "
            f"({process4['speedup']:.2f}x at 4 workers, floor "
            f"{PROCESS_CPU_FLOOR}x)")
    else:
        ok = False
        verdicts.append(
            f"FAIL: process backend reached only "
            f"{process4['speedup']:.2f}x at 4 workers (floor "
            f"{PROCESS_CPU_FLOOR}x on a {cpu_count}-CPU machine)")
    return verdicts, ok


def render(cpu_rows, io_rows, verdicts, cpu_schedule_len,
           io_schedule_len, cpu_count: int) -> str:
    def table(rows):
        lines = [f"{'backend':>8} | {'workers':>7} | {'req/s':>10} | "
                 f"{'speedup':>8}",
                 "-" * 44]
        for row in rows:
            lines.append(
                f"{row['backend']:>8} | {row['workers']:>7} | "
                f"{row['rps']:>10.1f} | {row['speedup']:>7.2f}x")
        return lines

    lines = [
        "Thread fleet vs process fleet "
        f"(os.cpu_count()={cpu_count})",
        "",
        f"CPU-bound leg: 4x IDE, {cpu_schedule_len} x "
        f"ide_sector_checksum (GIL-holding; speedup vs each "
        f"backend's own 1-worker run)",
    ]
    lines += table(cpu_rows)
    lines += [
        "",
        f"Sleeping-I/O leg: mixed fleet, {io_schedule_len} requests, "
        f"{IO_LATENCY_US:.0f}us/op + {IO_WORD_LATENCY_US:.1f}us/word "
        f"(GIL-releasing; threads overlap stalls in-process, the "
        f"process backend pays IPC per request)",
    ]
    lines += table(io_rows)
    lines += ["",
              "exactness: merged accounting and per-device end-state "
              "byte-identical across every backend and worker count",
              ""]
    lines += verdicts
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller schedules (CI smoke)")
    parser.add_argument("--requests", type=int, default=None,
                        help="CPU-bound requests in the schedule")
    args = parser.parse_args(argv)

    cpu_requests = args.requests or (12 if args.quick else 32)
    cpu_schedule = [("ide", ide_sector_checksum)] * cpu_requests
    io_schedule = mixed_schedule(4 if args.quick else 16)
    cpu_count = os.cpu_count() or 1

    cpu_rows, _ = scaling_leg(CPU_FLEET, cpu_schedule)
    io_rows, _ = scaling_leg(IO_FLEET, io_schedule,
                             IO_LATENCY_US, IO_WORD_LATENCY_US)
    verdicts, ok = check_floors(cpu_rows, cpu_count)

    table = render(cpu_rows, io_rows, verdicts, len(cpu_schedule),
                   len(io_schedule), cpu_count)
    record("BENCH_fleet_mp", table, data={
        "cpu_count": cpu_count,
        "cpu_leg": {"devices": CPU_FLEET,
                    "requests": len(cpu_schedule),
                    "rows": cpu_rows},
        "io_leg": {"devices": IO_FLEET,
                   "requests": len(io_schedule),
                   "latency_us": IO_LATENCY_US,
                   "word_latency_us": IO_WORD_LATENCY_US,
                   "rows": io_rows},
        "floors": {
            "thread_cpu_ceiling": THREAD_CPU_CEILING,
            "process_cpu_floor": PROCESS_CPU_FLOOR,
            "process_floor_min_cpus": PROCESS_FLOOR_MIN_CPUS,
            "process_floor_enforced":
                cpu_count >= PROCESS_FLOOR_MIN_CPUS,
        },
        "verdicts": verdicts,
    })

    for verdict in verdicts:
        stream = sys.stderr if verdict.startswith("FAIL") else sys.stdout
        print(verdict, file=stream)
    return 0 if ok else 1


def test_fleet_mp_bench_quick():
    """Pytest entry: tiny schedules, exactness only.

    The throughput ceiling/floor are waived here (wall-clock floors
    are flaky under a loaded test runner) and enforced by the
    standalone run in the CI concurrency job instead.  Exactness —
    the part that catches merge and scheduling bugs — still asserts.
    """
    cpu_rows, accounting = scaling_leg(
        CPU_FLEET, [("ide", ide_sector_checksum)] * 6)
    assert accounting.total_ops > 0
    assert len(cpu_rows) == 2 * len(WORKER_COUNTS)
    io_rows, _ = scaling_leg(IO_FLEET, mixed_schedule(2),
                             IO_LATENCY_US, IO_WORD_LATENCY_US)
    assert len(io_rows) == 2 * len(WORKER_COUNTS)


if __name__ == "__main__":
    sys.exit(main())
