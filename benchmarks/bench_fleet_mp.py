"""Thread fleet vs process fleet: CPU-bound and sleeping-I/O legs.

The measurement the multiprocessing backend exists for — and, since
the IPC-tax work, the measurement that justifies its transport.  Two
legs:

**CPU leg** — the request is :func:`repro.engine.ide_sector_checksum`:
one IDE sector read followed by a pure-Python rolling checksum that
holds the GIL for its whole duration (~2 ms).  Against that mix the
two backends must diverge in a very specific way:

* the **thread** backend cannot scale: every checksum serializes on
  the GIL, so 4 workers deliver essentially the single-worker rate.
  The benchmark enforces a *ceiling*: thread speedup at 4 workers must
  stay at or below ``THREAD_CPU_CEILING`` (1.2x) — if threads ever
  "scale" on this mix, the mix has stopped being CPU-bound and the
  benchmark has stopped testing what it claims to test.
* the **process** backend shards devices across worker processes, each
  with its own interpreter and GIL, so the checksums genuinely overlap
  on a multi-core machine.  The benchmark enforces a *floor*: process
  speedup at 4 workers must reach ``PROCESS_CPU_FLOOR`` (2.0x),
  enforced when ``os.cpu_count() >= 4`` and recorded as skipped, with
  the measurement, otherwise.

**I/O leg** — the mixed fleet under GIL-releasing port latency, in
four columns: the thread backend, the process backend on its original
transport (``batch=1``, no result ring — the PR-5 baseline, kept
measurable on purpose), and the batched transport at ``batch=8`` and
``batch=auto`` with shared-memory result rings.  Floors:

* batched process throughput at 4 workers must reach
  ``IO_BATCH_GAIN`` (2x) of the unbatched PR-5 transport measured in
  the *same run* — the IPC tax must actually be gone;
* batched process throughput at 4 workers must meet or beat the
  thread backend (``>= IO_PROCESS_VS_THREAD`` of it).

Both I/O floors are enforced on machines with at least 4 CPUs (every
CI runner); on smaller machines 4 worker processes time-slice one
core and the ratios are measurement noise, so they are recorded as
skips with the measured values, never silently dropped.

Exactness is enforced unconditionally on both legs: merged accounting
and byte-identical per-device end-state across every backend, worker
count, and batch size.  A scheduling, batching or ring-merge bug
fails this benchmark even on a single-core machine where the
throughput floors are waived.

Runs standalone (``python benchmarks/bench_fleet_mp.py [--quick]``,
the CI concurrency-job step) and under pytest via
:func:`test_fleet_mp_bench_quick`.  Results land in
``results/BENCH_fleet_mp.{txt,json}`` with the host environment
recorded alongside (a 1-CPU container's numbers are labeled as such).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import pytest

_HERE = Path(__file__).resolve().parent
for _path in (_HERE, _HERE.parent / "src"):
    if str(_path) not in sys.path:
        sys.path.insert(0, str(_path))

from conftest import record

from repro.engine import (
    Fleet,
    ProcessFleet,
    ide_sector_checksum,
    mixed_schedule,
)

pytestmark = pytest.mark.concurrency

#: Thread speedup at 4 workers must stay at or below this on the
#: CPU-bound mix (the GIL flatline; enforced everywhere).
THREAD_CPU_CEILING = 1.2

#: Process speedup at 4 workers must reach this on the CPU-bound mix
#: (enforced when the machine has >= PROCESS_FLOOR_MIN_CPUS cores).
PROCESS_CPU_FLOOR = 2.0
PROCESS_FLOOR_MIN_CPUS = 4

#: Batched process transport must reach this multiple of the
#: unbatched (PR-5) transport on the I/O leg at 4 workers — the
#: IPC-tax claim itself, machine-independent.
IO_BATCH_GAIN = 2.0

#: Batched process throughput must reach this fraction of the thread
#: backend on the I/O leg at 4 workers (>= 1.0 means "meets or
#: beats"; enforced on machines with >= IO_FLOOR_MIN_CPUS CPUs).
IO_PROCESS_VS_THREAD = 1.0
IO_FLOOR_MIN_CPUS = 4

WORKER_COUNTS = (1, 2, 4)

#: CPU leg: four disks, every request a GIL-holding checksum.
CPU_FLEET = ["ide"] * 4

#: I/O leg: the mixed machine of bench_fleet.py.
IO_FLEET = ["ide"] * 4 + ["permedia2"] * 4 + ["ne2000"] * 4
IO_LATENCY_US = 20.0
IO_WORD_LATENCY_US = 0.2

#: CPU-leg columns: thread vs the default process transport.
CPU_VARIANTS = (
    ("thread", "thread", {}),
    ("process", "process", {}),
)


def cpu_variants():
    """The CPU-leg columns, with a native thread column when a C
    compiler is present.

    The checksum mix holds the GIL in *request* code, so the native
    column is an exactness cross-check here, not a scaling claim —
    the dispatch-bound mix where the native core's GIL release wins
    lives in ``bench_fleet_native.py``.
    """
    from repro.devil.native import native_available

    variants = list(CPU_VARIANTS)
    if native_available():
        variants.append(("nat/thread", "thread",
                         {"strategy": "native"}))
    return tuple(variants)

#: I/O-leg columns: ``proc/b=1`` pins the pre-batching transport
#: (one queue message per request, per-request token resolution,
#: reports on the reply queue) as the in-run baseline the batched
#: columns are measured against.
IO_VARIANTS = (
    ("thread", "thread", {}),
    ("proc/b=1", "process",
     {"batch_size": 1, "ring_bytes": 0, "codec_cache": False}),
    ("proc/b=8", "process", {"batch_size": 8}),
    ("proc/auto", "process", {"batch_size": "auto"}),
)


def _build(backend: str, devices, workers: int,
           latency_us: float = 0.0, word_latency_us: float = 0.0,
           **fleet_kwargs):
    cls = ProcessFleet if backend == "process" else Fleet
    return cls(devices, workers=workers, policy="round-robin",
               op_latency_us=latency_us,
               word_latency_us=word_latency_us, **fleet_kwargs)


def run_once(backend: str, devices, workers: int, schedule,
             latency_us: float = 0.0, word_latency_us: float = 0.0,
             **fleet_kwargs):
    """One timed run; returns (req/s, accounting, device states)."""
    with _build(backend, devices, workers, latency_us,
                word_latency_us, **fleet_kwargs) as fleet:
        start = time.perf_counter()
        fleet.run(schedule)
        elapsed = time.perf_counter() - start
        accounting = fleet.accounting
        if backend == "thread":
            accounting = accounting.snapshot()
        states = fleet.device_states()
        assert fleet.completed() == len(schedule)
    return len(schedule) / elapsed, accounting, states


def scaling_leg(variants, devices, schedule, latency_us: float = 0.0,
                word_latency_us: float = 0.0):
    """Every variant at every worker count, with exactness checks.

    Speedups are relative to each variant's own single-worker run, so
    they isolate scaling from the (constant) per-transport overhead.
    Every run must land identical accounting and byte-identical
    device end-state — backend, worker count and batch size may
    change *when* work happens, never *what* reaches the wire.
    """
    rows = []
    reference = None
    for label, backend, fleet_kwargs in variants:
        base_rate = None
        for workers in WORKER_COUNTS:
            rate, accounting, states = run_once(
                backend, devices, workers, schedule,
                latency_us, word_latency_us, **fleet_kwargs)
            if reference is None:
                reference = (accounting, states)
            else:
                if accounting != reference[0]:
                    raise AssertionError(
                        f"accounting diverged ({label}, {workers} "
                        f"workers):\n  reference: {reference[0]}\n"
                        f"  this run : {accounting}")
                if states != reference[1]:
                    diverged = sorted(
                        name for name in reference[1]
                        if states.get(name) != reference[1][name])
                    raise AssertionError(
                        f"device end-state diverged ({label}, "
                        f"{workers} workers): {diverged}")
            if base_rate is None:
                base_rate = rate
            rows.append({"label": label, "backend": backend,
                         "workers": workers, "rps": rate,
                         "speedup": rate / base_rate})
    return rows, reference[0]


def _row(rows, label: str, workers: int) -> dict:
    return next(row for row in rows
                if row["label"] == label
                and row["workers"] == workers)


def check_floors(cpu_rows, io_rows, cpu_count: int,
                 quick: bool = False):
    """(verdicts, ok) for both legs' ceilings and floors.

    ``quick`` waives the I/O ratio floors: the smoke schedules are
    dominated by worker startup, so their ratios measure amortization
    of a constant, not the transport.  The full run enforces them.
    """
    verdicts = []
    ok = True

    thread4 = _row(cpu_rows, "thread", 4)
    if thread4["speedup"] <= THREAD_CPU_CEILING:
        verdicts.append(
            f"OK: thread backend flatlines on CPU-bound mix "
            f"({thread4['speedup']:.2f}x at 4 workers, ceiling "
            f"{THREAD_CPU_CEILING}x)")
    else:
        ok = False
        verdicts.append(
            f"FAIL: thread backend 'scaled' to "
            f"{thread4['speedup']:.2f}x at 4 workers (ceiling "
            f"{THREAD_CPU_CEILING}x) — the mix is no longer CPU-bound")

    process4 = _row(cpu_rows, "process", 4)
    if cpu_count < PROCESS_FLOOR_MIN_CPUS:
        verdicts.append(
            f"SKIP: process scaling floor ({PROCESS_CPU_FLOOR}x at 4 "
            f"workers) needs >= {PROCESS_FLOOR_MIN_CPUS} CPUs; this "
            f"machine has {cpu_count} (measured "
            f"{process4['speedup']:.2f}x)")
    elif process4["speedup"] >= PROCESS_CPU_FLOOR:
        verdicts.append(
            f"OK: process backend scales on CPU-bound mix "
            f"({process4['speedup']:.2f}x at 4 workers, floor "
            f"{PROCESS_CPU_FLOOR}x)")
    else:
        ok = False
        verdicts.append(
            f"FAIL: process backend reached only "
            f"{process4['speedup']:.2f}x at 4 workers (floor "
            f"{PROCESS_CPU_FLOOR}x on a {cpu_count}-CPU machine)")

    unbatched4 = _row(io_rows, "proc/b=1", 4)
    batched4 = _row(io_rows, "proc/b=8", 4)
    gain = batched4["rps"] / unbatched4["rps"]
    if quick:
        verdicts.append(
            f"SKIP: batch-gain floor waived on --quick (schedule too "
            f"small for a stable ratio; measured {gain:.2f}x)")
    elif cpu_count < IO_FLOOR_MIN_CPUS:
        verdicts.append(
            f"SKIP: batch-gain floor ({IO_BATCH_GAIN}x over the "
            f"unbatched transport at 4 workers) needs >= "
            f"{IO_FLOOR_MIN_CPUS} CPUs for a stable measurement; "
            f"this machine has {cpu_count} (measured {gain:.2f}x)")
    elif gain >= IO_BATCH_GAIN:
        verdicts.append(
            f"OK: batching killed the IPC tax on the I/O leg "
            f"({gain:.2f}x over the unbatched transport at 4 "
            f"workers, floor {IO_BATCH_GAIN}x)")
    else:
        ok = False
        verdicts.append(
            f"FAIL: batched process transport reached only "
            f"{gain:.2f}x of the unbatched baseline at 4 workers "
            f"(floor {IO_BATCH_GAIN}x on a {cpu_count}-CPU "
            f"machine) — the IPC tax is back")

    io_thread4 = _row(io_rows, "thread", 4)
    ratio = batched4["rps"] / io_thread4["rps"]
    if quick:
        verdicts.append(
            f"SKIP: process-vs-thread I/O floor waived on --quick "
            f"(measured {ratio:.2f}x)")
    elif cpu_count < IO_FLOOR_MIN_CPUS:
        verdicts.append(
            f"SKIP: process-vs-thread I/O floor "
            f"(>= {IO_PROCESS_VS_THREAD:.1f}x of threads at 4 "
            f"workers) needs >= {IO_FLOOR_MIN_CPUS} CPUs; this "
            f"machine has {cpu_count} (measured {ratio:.2f}x)")
    elif ratio >= IO_PROCESS_VS_THREAD:
        verdicts.append(
            f"OK: batched process backend meets the thread backend "
            f"on the I/O leg ({ratio:.2f}x of thread throughput at "
            f"4 workers, floor {IO_PROCESS_VS_THREAD:.1f}x)")
    else:
        ok = False
        verdicts.append(
            f"FAIL: batched process backend reached only "
            f"{ratio:.2f}x of thread throughput on the I/O leg at 4 "
            f"workers (floor {IO_PROCESS_VS_THREAD:.1f}x on a "
            f"{cpu_count}-CPU machine)")
    return verdicts, ok


def render(cpu_rows, io_rows, verdicts, cpu_schedule_len,
           io_schedule_len, cpu_count: int) -> str:
    def table(rows):
        lines = [f"{'variant':>10} | {'workers':>7} | {'req/s':>10} | "
                 f"{'speedup':>8}",
                 "-" * 46]
        for row in rows:
            lines.append(
                f"{row['label']:>10} | {row['workers']:>7} | "
                f"{row['rps']:>10.1f} | {row['speedup']:>7.2f}x")
        return lines

    lines = [
        "Thread fleet vs process fleet "
        f"(os.cpu_count()={cpu_count})",
        "",
        f"CPU-bound leg: 4x IDE, {cpu_schedule_len} x "
        f"ide_sector_checksum (GIL-holding; speedup vs each "
        f"variant's own 1-worker run)",
    ]
    lines += table(cpu_rows)
    lines += [
        "",
        f"Sleeping-I/O leg: mixed fleet, {io_schedule_len} requests, "
        f"{IO_LATENCY_US:.0f}us/op + {IO_WORD_LATENCY_US:.1f}us/word "
        f"(GIL-releasing; proc/b=1 is the pre-batching transport, "
        f"proc/b=8 and proc/auto batch placements and return results "
        f"through shared-memory rings)",
    ]
    lines += table(io_rows)
    lines += ["",
              "exactness: merged accounting and per-device end-state "
              "byte-identical across every variant and worker count",
              ""]
    lines += verdicts
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller schedules (CI smoke)")
    parser.add_argument("--requests", type=int, default=None,
                        help="CPU-bound requests in the schedule")
    args = parser.parse_args(argv)

    cpu_requests = args.requests or (12 if args.quick else 32)
    cpu_schedule = [("ide", ide_sector_checksum)] * cpu_requests
    io_schedule = mixed_schedule(4 if args.quick else 16)
    cpu_count = os.cpu_count() or 1

    cpu_rows, _ = scaling_leg(cpu_variants(), CPU_FLEET, cpu_schedule)
    io_rows, _ = scaling_leg(IO_VARIANTS, IO_FLEET, io_schedule,
                             IO_LATENCY_US, IO_WORD_LATENCY_US)
    verdicts, ok = check_floors(cpu_rows, io_rows, cpu_count,
                                quick=args.quick)

    table = render(cpu_rows, io_rows, verdicts, len(cpu_schedule),
                   len(io_schedule), cpu_count)
    record("BENCH_fleet_mp", table, data={
        "quick": args.quick,
        "cpu_count": cpu_count,
        "cpu_leg": {"devices": CPU_FLEET,
                    "requests": len(cpu_schedule),
                    "rows": cpu_rows},
        "io_leg": {"devices": IO_FLEET,
                   "requests": len(io_schedule),
                   "latency_us": IO_LATENCY_US,
                   "word_latency_us": IO_WORD_LATENCY_US,
                   "rows": io_rows},
        "floors": {
            "thread_cpu_ceiling": THREAD_CPU_CEILING,
            "process_cpu_floor": PROCESS_CPU_FLOOR,
            "process_floor_min_cpus": PROCESS_FLOOR_MIN_CPUS,
            "process_floor_enforced":
                cpu_count >= PROCESS_FLOOR_MIN_CPUS,
            "io_batch_gain": IO_BATCH_GAIN,
            "io_process_vs_thread": IO_PROCESS_VS_THREAD,
            "io_floor_min_cpus": IO_FLOOR_MIN_CPUS,
            "io_floor_enforced": cpu_count >= IO_FLOOR_MIN_CPUS,
        },
        "verdicts": verdicts,
    })

    for verdict in verdicts:
        stream = sys.stderr if verdict.startswith("FAIL") else sys.stdout
        print(verdict, file=stream)
    return 0 if ok else 1


def test_fleet_mp_bench_quick():
    """Pytest entry: tiny schedules, exactness only.

    The throughput ceilings/floors are waived here (wall-clock floors
    are flaky under a loaded test runner) and enforced by the
    standalone run in the CI concurrency job instead.  Exactness —
    the part that catches merge, batching and ring bugs — still
    asserts across every variant.
    """
    variants = cpu_variants()
    cpu_rows, accounting = scaling_leg(
        variants, CPU_FLEET, [("ide", ide_sector_checksum)] * 6)
    assert accounting.total_ops > 0
    assert len(cpu_rows) == len(variants) * len(WORKER_COUNTS)
    io_rows, _ = scaling_leg(IO_VARIANTS, IO_FLEET, mixed_schedule(2),
                             IO_LATENCY_US, IO_WORD_LATENCY_US)
    assert len(io_rows) == len(IO_VARIANTS) * len(WORKER_COUNTS)


if __name__ == "__main__":
    sys.exit(main())
