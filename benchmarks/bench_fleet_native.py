"""Native fleet throughput: GIL-free batched C dispatch vs the specializer.

The tentpole measurement for the native fleet substrate.  The request
is :func:`repro.engine.ide_taskfile_churn` — thousands of single-
register writes with no latency model and no data transfer, i.e. pure
dispatch cost.  On interpret/specialize stubs every write is a full
Python round trip holding the GIL, so a thread fleet flatlines no
matter how many workers it has.  On native stubs the whole request
collapses into one C ``repeat()`` call that *releases* the GIL and
runs against the C port table with C-resident device models — N
thread-fleet workers overlap in real parallel, with no process
backend and no IPC in sight.

Columns (each at 1, 2 and 4 workers):

* ``spec/thread`` — the specializer on the thread backend: the
  GIL-bound baseline;
* ``nat/thread``  — the native core on the thread backend: the claim;
* ``nat/process`` — the native core sharded across worker processes:
  shows the C core composes with the process backend too.

Floor (CI-enforced on >= 4-CPU machines, recorded as a skip with the
measurement otherwise): ``nat/thread`` at 4 workers must deliver at
least ``NATIVE_VS_SPECIALIZE`` (2x) the throughput of ``spec/thread``
at 4 workers.  Exactness is enforced unconditionally: merged
accounting and byte-identical per-device end-state across every
variant and worker count.

Runs standalone (``python benchmarks/bench_fleet_native.py
[--quick]``, the CI concurrency-job step) and under pytest via
:func:`test_fleet_native_bench_quick`.  Results land in
``results/BENCH_fleet_native.{txt,json}`` with the host environment
and toolchain recorded alongside.
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
import time
from pathlib import Path

import pytest

_HERE = Path(__file__).resolve().parent
for _path in (_HERE, _HERE.parent / "src"):
    if str(_path) not in sys.path:
        sys.path.insert(0, str(_path))

from conftest import record

from repro.devil.native import native_available
from repro.devil.native.build import compiler_id
from repro.engine import CHURN_OPS, Fleet, ProcessFleet, \
    ide_taskfile_churn

pytestmark = pytest.mark.concurrency

#: The claim: native thread-fleet throughput at 4 workers must reach
#: this multiple of the specializer thread fleet at 4 workers.
NATIVE_VS_SPECIALIZE = 2.0
FLOOR_MIN_CPUS = 4

WORKER_COUNTS = (1, 2, 4)

#: Four disks, every request a dispatch-bound taskfile churn.
FLEET = ["ide"] * 4

VARIANTS = (
    ("spec/thread", "thread", "specialize"),
    ("nat/thread", "thread", "native"),
    ("nat/process", "process", "native"),
)


def run_once(backend: str, strategy: str, workers: int, schedule):
    """One timed run; returns (req/s, accounting, device states)."""
    cls = ProcessFleet if backend == "process" else Fleet
    with cls(FLEET, workers=workers, strategy=strategy,
             policy="round-robin") as fleet:
        start = time.perf_counter()
        fleet.run(schedule)
        elapsed = time.perf_counter() - start
        accounting = fleet.accounting
        if backend == "thread":
            accounting = accounting.snapshot()
        states = fleet.device_states()
        assert fleet.completed() == len(schedule)
    return len(schedule) / elapsed, accounting, states


def scaling_leg(schedule):
    """Every variant at every worker count, with exactness checks.

    The specializer's Python loop and the native ``repeat()`` batch
    produce identical bus traffic by construction; this asserts it —
    merged accounting and per-device end state must byte-match across
    strategy, backend and worker count.
    """
    rows = []
    reference = None
    for label, backend, strategy in VARIANTS:
        base_rate = None
        for workers in WORKER_COUNTS:
            rate, accounting, states = run_once(
                backend, strategy, workers, schedule)
            if reference is None:
                reference = (accounting, states)
            else:
                if accounting != reference[0]:
                    raise AssertionError(
                        f"accounting diverged ({label}, {workers} "
                        f"workers):\n  reference: {reference[0]}\n"
                        f"  this run : {accounting}")
                if states != reference[1]:
                    diverged = sorted(
                        name for name in reference[1]
                        if states.get(name) != reference[1][name])
                    raise AssertionError(
                        f"device end-state diverged ({label}, "
                        f"{workers} workers): {diverged}")
            if base_rate is None:
                base_rate = rate
            rows.append({"label": label, "backend": backend,
                         "strategy": strategy, "workers": workers,
                         "rps": rate, "speedup": rate / base_rate})
    return rows, reference[0]


def _row(rows, label: str, workers: int) -> dict:
    return next(row for row in rows
                if row["label"] == label
                and row["workers"] == workers)


def check_floor(rows, cpu_count: int):
    """The native-vs-specialize verdict at 4 thread workers."""
    native4 = _row(rows, "nat/thread", 4)
    spec4 = _row(rows, "spec/thread", 4)
    ratio = native4["rps"] / spec4["rps"]
    if cpu_count < FLOOR_MIN_CPUS:
        return (f"SKIP: native-vs-specialize floor "
                f"({NATIVE_VS_SPECIALIZE}x at 4 thread workers) needs "
                f">= {FLOOR_MIN_CPUS} CPUs; this machine has "
                f"{cpu_count} (measured {ratio:.2f}x)"), True, ratio
    if ratio >= NATIVE_VS_SPECIALIZE:
        return (f"OK: native thread fleet beats the specializer "
                f"({ratio:.2f}x at 4 workers, floor "
                f"{NATIVE_VS_SPECIALIZE}x)"), True, ratio
    return (f"FAIL: native thread fleet reached only {ratio:.2f}x of "
            f"the specializer at 4 workers (floor "
            f"{NATIVE_VS_SPECIALIZE}x on a {cpu_count}-CPU "
            f"machine)"), False, ratio


def render(rows, accounting, verdict, requests: int, ops: int,
           cpu_count: int) -> str:
    lines = [
        "Native fleet: GIL-free batched C dispatch vs the specializer",
        f"4x IDE, {requests} x ide_taskfile_churn({ops} writes each), "
        f"os.cpu_count()={cpu_count}",
        "",
        f"{'variant':>12} | {'workers':>7} | {'req/s':>10} | "
        f"{'speedup':>8}",
        "-" * 48,
    ]
    for row in rows:
        lines.append(
            f"{row['label']:>12} | {row['workers']:>7} | "
            f"{row['rps']:>10.2f} | {row['speedup']:>7.2f}x")
    lines += [
        "",
        f"port ops (identical across every variant and worker "
        f"count): total={accounting.total_ops} "
        f"reads={accounting.reads} writes={accounting.writes}",
        "",
        verdict,
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller schedule (CI smoke); the floor "
                             "still applies — the ratio is stable "
                             "because both columns shrink together")
    parser.add_argument("--requests", type=int, default=None,
                        help="churn requests in the schedule")
    parser.add_argument("--ops", type=int, default=None,
                        help="register writes per churn request")
    args = parser.parse_args(argv)

    if not native_available():
        print("SKIP: bench_fleet_native needs a C compiler "
              "(native_available() is False)")
        return 0

    requests = args.requests or (16 if args.quick else 48)
    ops = args.ops or (2048 if args.quick else CHURN_OPS)
    schedule = [("ide", functools.partial(ide_taskfile_churn,
                                          n=ops))] * requests
    cpu_count = os.cpu_count() or 1

    rows, accounting = scaling_leg(schedule)
    verdict, ok, ratio = check_floor(rows, cpu_count)

    table = render(rows, accounting, verdict, requests, ops, cpu_count)
    record("BENCH_fleet_native", table, data={
        "quick": args.quick,
        "cpu_count": cpu_count,
        "compiler": compiler_id(),
        "devices": FLEET,
        "requests": requests,
        "ops_per_request": ops,
        "rows": rows,
        "port_ops": {
            "total_ops": accounting.total_ops,
            "reads": accounting.reads,
            "writes": accounting.writes,
        },
        "floor": {
            "native_vs_specialize": NATIVE_VS_SPECIALIZE,
            "min_cpus": FLOOR_MIN_CPUS,
            "enforced": cpu_count >= FLOOR_MIN_CPUS,
            "measured_ratio": ratio,
        },
        "verdict": verdict,
    })

    print(verdict, file=sys.stdout if ok else sys.stderr)
    return 0 if ok else 1


def test_fleet_native_bench_quick():
    """Pytest entry: tiny schedule, exactness only.

    The throughput floor is waived here (wall-clock ratios are flaky
    under a loaded test runner) and enforced by the standalone run in
    the CI concurrency job instead.
    """
    if not native_available():
        pytest.skip("no C compiler")
    schedule = [("ide", functools.partial(ide_taskfile_churn,
                                          n=256))] * 6
    rows, accounting = scaling_leg(schedule)
    assert accounting.writes == 6 * 256
    assert len(rows) == len(VARIANTS) * len(WORKER_COUNTS)


if __name__ == "__main__":
    sys.exit(main())
