"""Telemetry overhead: disabled, enabled-detached, enabled-collecting.

The :mod:`repro.obs` design promise is *bind-time gating*: instances
bound while telemetry is disabled get exactly the stubs an
uninstrumented build would produce, and the bus's ``collector`` hook
rides the existing ``tracing`` gate, so an untraced bus checks exactly
the one flag it always did — observability must be nearly free until
it is asked for.  This bench quantifies the full
ladder on the stub-dispatch workloads of
``benchmarks/bench_stub_dispatch.py``:

* ``off``        — telemetry disabled at bind time (the default);
* ``on-detached`` — instrumented stubs, no collector attached: the
  per-call cost is one ``bus.collector`` load per public stub call;
* ``on-collecting`` — a live :class:`repro.obs.Collector` receiving
  spans, actions and I/O events (bus tracing on, ring-buffered, since
  port attribution rides the trace hook).

Two guards:

* always: an interleaved A/B — the same telemetry-off stubs driven
  against the real :class:`repro.bus.Bus` and against a bus with the
  telemetry hot-path additions (the per-access ``collector`` check)
  removed — must show <5% cost per hot workload.  Interleaving the
  two timed loops in one process makes the comparison immune to the
  machine drift that plagues cross-run rate comparisons;
* always: the PR acceptance floor of bind-time specialization
  (specialized ≥ 3x interpreted on the hot workloads) must still hold
  with telemetry code in the tree and **off** — the repository's
  standing regression bound;
* ``--strict``: additionally compare ``off`` rates against the
  committed ``results/BENCH_stub_dispatch.json`` baseline (recorded
  for inspection in all modes; only meaningful on the machine and
  session that recorded the baseline, hence not asserted by default).

Records ``results/BENCH_obs_overhead.{txt,json}``.

The **fleet leg** (``--fleet-only`` / skipped with ``--no-fleet``)
extends the ladder to the live telemetry plane of PR 7: the same
latency-model mixed workload driven through a thread fleet and a
process fleet with ``telemetry=`` off and on, interleaved A/B in one
process.  Enabled overhead on the thread backend is asserted ≤5%
(heartbeats, the flight recorder and latency histograms live at
request boundaries, off the port-I/O path).  Records
``results/BENCH_obs_live.{txt,json}``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import pytest

_HERE = Path(__file__).resolve().parent
for _path in (_HERE, _HERE.parent / "src"):
    if str(_path) not in sys.path:
        sys.path.insert(0, str(_path))

from bench_stub_dispatch import (
    FLOOR_WORKLOADS,
    SPEEDUP_FLOOR,
    STRATEGIES,
    WORKLOADS,
    _machine,
)
from conftest import RESULTS_DIR, record

from repro import obs
from repro.bus import Bus, IoTraceEntry
from repro.obs.workloads import bind_stubs

CONFIGS = ("off", "on-detached", "on-collecting")

#: Disabled telemetry must cost at most this fraction (A/B assert;
#: also the --strict bound against the committed baseline).
OFF_OVERHEAD_BOUND = 0.05


class _BareBus(Bus):
    """The pre-telemetry Bus hot path, reproduced exactly.

    ``read``/``write`` carry the original bodies: inline trace append,
    no ring-buffer accounting, no ``collector`` hook.  Binding
    identical telemetry-off stubs to a ``Bus`` and a ``_BareBus`` and
    timing them interleaved measures exactly what the disabled-mode
    instrumentation costs, immune to cross-run machine drift.
    """

    def read(self, port: int, width: int = 8) -> int:
        mapping = self._port_cache.get(port)
        if mapping is None:
            self._check_width(width)
            mapping = self._find(port)
        elif width not in (8, 16, 32):
            raise ValueError(f"unsupported access width {width}")
        value = mapping.device.io_read(port - mapping.base, width)
        value &= (1 << width) - 1
        accounting = self.accounting
        accounting.reads += 1
        by_width = accounting.single_by_width
        by_width[width] = by_width.get(width, 0) + 1
        if self.tracing:
            self.trace.append(IoTraceEntry("r", port, value, width))
        return value

    def write(self, value: int, port: int, width: int = 8) -> None:
        mapping = self._port_cache.get(port)
        if mapping is None:
            self._check_width(width)
            mapping = self._find(port)
        elif width not in (8, 16, 32):
            raise ValueError(f"unsupported access width {width}")
        value &= (1 << width) - 1
        mapping.device.io_write(port - mapping.base, value, width)
        accounting = self.accounting
        accounting.writes += 1
        by_width = accounting.single_by_width
        by_width[width] = by_width.get(width, 0) + 1
        if self.tracing:
            self.trace.append(IoTraceEntry("w", port, value, width))


def _bind_config(machine: str, strategy: str, bus, bases,
                 config: str):
    """Bind under one telemetry configuration; returns the instance."""
    if config == "off":
        obs.disable()
        return bind_stubs(machine, strategy, bus, bases, debug=False)
    obs.enable()
    try:
        device = bind_stubs(machine, strategy, bus, bases, debug=False)
    finally:
        obs.disable()
    if config == "on-collecting":
        collector = obs.Collector()
        collector.register_ports(machine,
                                 getattr(device, "_obs_ports", {}))
        bus.collector = collector
        device._bench_collector = collector
    return device


def _calls_per_sec(workload, strategy: str, config: str,
                   iterations: int, repeats: int) -> float:
    _, machine, setup, op = workload
    if config == "on-collecting":
        # Port attribution rides the trace hook; a bounded ring keeps
        # the trace from growing for the duration of the timed loops.
        bus, bases = _machine(
            machine, tracing=True,
            bus_factory=lambda tracing: Bus(tracing=True,
                                            trace_limit=4096))
    else:
        bus, bases = _machine(machine, tracing=False)
    device = _bind_config(machine, strategy, bus, bases, config)
    collector = getattr(device, "_bench_collector", None)
    if setup is not None:
        setup(device)
    op(device)  # warm caches and lazy paths outside the timed loop
    best = float("inf")
    for _ in range(repeats):
        if collector is not None:
            collector.clear()  # keep span accumulation out of memory
        start = time.perf_counter()
        for _ in range(iterations):
            op(device)
        best = min(best, time.perf_counter() - start)
    return iterations / best


def _ab_overhead(workload, strategy: str, iterations: int,
                 repeats: int) -> float:
    """Cost of disabled telemetry, measured interleaved in-process.

    Returns ``bare_rate / bus_rate - 1``: the fractional slowdown the
    telemetry-off configuration shows against a bus without the
    telemetry hot path.
    """
    _, machine, setup, op = workload
    obs.disable()
    devices = []
    for factory in (Bus, _BareBus):
        bus, bases = _machine(machine, tracing=False,
                              bus_factory=factory)
        device = bind_stubs(machine, strategy, bus, bases, debug=False)
        if setup is not None:
            setup(device)
        op(device)
        devices.append(device)
    # Calibrate so each timed chunk runs >=20ms: sub-millisecond chunks
    # are dominated by scheduler jitter, not the code under test.
    while True:
        start = time.perf_counter()
        for _ in range(iterations):
            op(devices[0])
        if time.perf_counter() - start >= 0.02:
            break
        iterations *= 2
    # Noise bursts on shared machines outlast a handful of chunks;
    # best-of-15 per side reliably catches a quiet window for both.
    best = [float("inf"), float("inf")]
    for repeat in range(max(repeats, 15)):
        # Alternate which bus is timed first so scheduler bursts and
        # cache effects cancel instead of biasing one side.
        order = (0, 1) if repeat % 2 == 0 else (1, 0)
        for index in order:
            device = devices[index]
            start = time.perf_counter()
            for _ in range(iterations):
                op(device)
            best[index] = min(best[index],
                              time.perf_counter() - start)
    bus_rate, bare_rate = (iterations / elapsed for elapsed in best)
    return bare_rate / bus_rate - 1.0


def _committed_baseline() -> dict[str, dict[str, float]]:
    """release-mode rates from results/BENCH_stub_dispatch.json."""
    path = RESULTS_DIR / "BENCH_stub_dispatch.json"
    if not path.exists():
        return {}
    payload = json.loads(path.read_text())
    baseline: dict[str, dict[str, float]] = {}
    for row in payload.get("data", {}).get("rows", []):
        if not row["debug"]:
            baseline[row["workload"]] = row["calls_per_sec"]
    return baseline


def run_bench(quick: bool = False, strict: bool = False,
              iterations: int | None = None,
              repeats: int | None = None) -> dict:
    iterations = iterations or (1000 if quick else 10000)
    repeats = repeats or (2 if quick else 3)
    baseline = _committed_baseline()

    rows = []
    for workload in WORKLOADS:
        name = workload[0]
        for strategy in STRATEGIES:
            rates = {config: _calls_per_sec(workload, strategy, config,
                                            iterations, repeats)
                     for config in CONFIGS}
            row = {
                "workload": name,
                "strategy": strategy,
                "calls_per_sec": rates,
                "overhead_on_detached":
                    rates["off"] / rates["on-detached"] - 1.0,
                "overhead_on_collecting":
                    rates["off"] / rates["on-collecting"] - 1.0,
            }
            reference = baseline.get(name, {}).get(strategy)
            if reference:
                row["baseline_calls_per_sec"] = reference
                row["overhead_off_vs_baseline"] = \
                    reference / rates["off"] - 1.0
            row["ab_overhead_off"] = _ab_overhead(
                workload, strategy, max(iterations, 1000), repeats)
            rows.append(row)

    lines = [
        "Telemetry overhead, calls/sec (best of "
        f"{repeats} x {iterations} calls; release mode):",
        "",
        f"{'workload':<26} {'strategy':<11} {'off':>11} "
        f"{'on-detached':>12} {'on-collect':>11} {'det%':>6} "
        f"{'col%':>6} {'offA/B%':>8} {'vs-base%':>9}",
    ]
    for row in rows:
        rates = row["calls_per_sec"]
        base = row.get("overhead_off_vs_baseline")
        base_text = f"{100 * base:>8.1f}%" if base is not None \
            else f"{'n/a':>9}"
        lines.append(
            f"{row['workload']:<26} {row['strategy']:<11} "
            f"{rates['off']:>11,.0f} {rates['on-detached']:>12,.0f} "
            f"{rates['on-collecting']:>11,.0f} "
            f"{100 * row['overhead_on_detached']:>5.1f}% "
            f"{100 * row['overhead_on_collecting']:>5.1f}% "
            f"{100 * row['ab_overhead_off']:>7.1f}% "
            f"{base_text}")
    lines += [
        "",
        "off = telemetry disabled at bind (the default); det%/col% = "
        "slowdown of the",
        "instrumented configurations relative to off; offA/B% = "
        "slowdown of off vs a",
        "bus without the telemetry hot path, interleaved in-process "
        "(the asserted",
        "<5% bound); vs-base% = off vs the committed "
        "BENCH_stub_dispatch baseline",
        "(cross-run, informational; asserted only under --strict).",
    ]

    report = {"quick": quick, "iterations": iterations,
              "repeats": repeats, "strict": strict,
              "off_overhead_bound": OFF_OVERHEAD_BOUND, "rows": rows}
    record("BENCH_obs_overhead", "\n".join(lines), data=report)

    # Disabled telemetry must be nearly free (the interleaved A/B
    # isolates exactly the added hot-path code).
    for row in rows:
        assert row["ab_overhead_off"] <= OFF_OVERHEAD_BOUND, \
            f"{row['workload']}/{row['strategy']}: disabled telemetry " \
            f"costs {100 * row['ab_overhead_off']:.1f}% vs the bare " \
            f"bus (bound {100 * OFF_OVERHEAD_BOUND:.0f}%)"

    # Standing guard: the specialization acceptance floor must hold
    # with telemetry machinery present but off.
    off_rates = {(row["workload"], row["strategy"]):
                 row["calls_per_sec"]["off"] for row in rows}
    for name in FLOOR_WORKLOADS:
        speedup = off_rates[(name, "specialize")] / \
            off_rates[(name, "interpret")]
        assert speedup >= SPEEDUP_FLOOR, \
            f"{name}: specialized only {speedup:.2f}x interpreted " \
            f"with telemetry off (floor {SPEEDUP_FLOOR}x)"

    if strict:
        assert baseline, "no committed BENCH_stub_dispatch baseline"
        for row in rows:
            overhead = row.get("overhead_off_vs_baseline")
            if overhead is None:
                continue
            assert overhead <= OFF_OVERHEAD_BOUND, \
                f"{row['workload']}/{row['strategy']}: disabled " \
                f"telemetry costs {100 * overhead:.1f}% vs the " \
                f"committed baseline " \
                f"(bound {100 * OFF_OVERHEAD_BOUND:.0f}%)"
    return report


def test_obs_overhead_quick():
    """Pytest entry point: quick smoke (floor with telemetry off)."""
    run_bench(quick=True)


# ---------------------------------------------------------------------------
# The fleet leg: live-plane enabled overhead on both backends
# ---------------------------------------------------------------------------

#: Enabled live telemetry (heartbeats + histograms + flight recorder)
#: must cost at most this fraction of thread-fleet throughput.
FLEET_OVERHEAD_BOUND = 0.05

FLEET_DEVICES = ("ide", "permedia2", "ne2000")


def _fleet_rate_pair(backend: str, schedule, rounds: int,
                     workers: int = 2) -> dict[str, float]:
    """Interleaved A/B requests/sec: ``telemetry=`` off vs on.

    Both fleets live for the whole measurement; each round runs the
    full schedule (submit + drain) on each side, alternating which
    side goes first, and the best round per side is kept — the same
    drift-immunity discipline as the stub-dispatch A/B above.
    """
    from repro.engine import Fleet, ProcessFleet

    fleet_cls = ProcessFleet if backend == "process" else Fleet
    kwargs = dict(workers=workers, policy="round-robin",
                  op_latency_us=20.0, word_latency_us=0.2)
    fleets = {"off": fleet_cls(list(FLEET_DEVICES), **kwargs),
              "on": fleet_cls(list(FLEET_DEVICES), telemetry=True,
                              **kwargs)}
    best = {"off": float("inf"), "on": float("inf")}
    try:
        for fleet in fleets.values():
            fleet.run(schedule)  # warm workers, caches, lazy imports
        for repeat in range(rounds):
            order = ("off", "on") if repeat % 2 == 0 else ("on", "off")
            for key in order:
                fleet = fleets[key]
                start = time.perf_counter()
                fleet.run(schedule)
                best[key] = min(best[key],
                                time.perf_counter() - start)
        # The enabled plane must actually have been alive, not elided.
        telemetry = fleets["on"].telemetry
        assert telemetry.observed_p95_us() > 0.0
        assert fleets["on"].health_view().statuses()
    finally:
        for fleet in fleets.values():
            fleet.shutdown()
    return {key: len(schedule) / elapsed
            for key, elapsed in best.items()}


def run_fleet_bench(quick: bool = False,
                    requests_per_spec: int | None = None,
                    rounds: int | None = None) -> dict:
    """The live-plane leg; records ``results/BENCH_obs_live``."""
    from repro.engine import mixed_schedule

    requests_per_spec = requests_per_spec or (8 if quick else 32)
    rounds = rounds or (3 if quick else 7)
    schedule = mixed_schedule(requests_per_spec)

    rows = []
    for backend in ("thread", "process"):
        rates = _fleet_rate_pair(backend, schedule, rounds)
        rows.append({
            "backend": backend,
            "requests": len(schedule),
            "rounds": rounds,
            "req_per_sec": rates,
            "overhead_enabled": rates["off"] / rates["on"] - 1.0,
        })

    lines = [
        f"Live fleet telemetry overhead, req/s (best of {rounds} x "
        f"{len(schedule)} latency-model requests, 2 workers):",
        "",
        f"{'backend':<10} {'telemetry off':>14} {'telemetry on':>14} "
        f"{'enabled%':>9}",
    ]
    for row in rows:
        rates = row["req_per_sec"]
        lines.append(f"{row['backend']:<10} {rates['off']:>14,.0f} "
                     f"{rates['on']:>14,.0f} "
                     f"{100 * row['overhead_enabled']:>8.1f}%")
    lines += [
        "",
        "enabled% = slowdown with the live plane attached (heartbeats, "
        "request-latency",
        "histograms, flight recorder), interleaved in-process; the "
        "thread backend is",
        f"asserted <= {100 * FLEET_OVERHEAD_BOUND:.0f}% (the process "
        "backend's number is informational — its",
        "heartbeats cross shared memory and ride worker-side request "
        "execution).",
    ]

    report = {"quick": quick, "requests": len(schedule),
              "rounds": rounds,
              "fleet_overhead_bound": FLEET_OVERHEAD_BOUND,
              "rows": rows}
    record("BENCH_obs_live", "\n".join(lines), data=report)

    for row in rows:
        if row["backend"] == "thread":
            assert row["overhead_enabled"] <= FLEET_OVERHEAD_BOUND, \
                f"thread fleet: enabled live telemetry costs " \
                f"{100 * row['overhead_enabled']:.1f}% " \
                f"(bound {100 * FLEET_OVERHEAD_BOUND:.0f}%)"
    return report


@pytest.mark.concurrency
def test_obs_live_fleet_quick():
    """Pytest entry point: quick fleet leg (concurrency job)."""
    run_fleet_bench(quick=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small iteration counts (CI smoke run)")
    parser.add_argument("--strict", action="store_true",
                        help="also assert the <5%% disabled-overhead "
                             "bound against the committed baseline "
                             "(same-machine runs only)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="timed calls per measurement")
    parser.add_argument("--repeats", type=int, default=None,
                        help="measurement repeats (best is kept)")
    parser.add_argument("--no-fleet", action="store_true",
                        help="skip the live fleet telemetry leg "
                             "(fast CI tier)")
    parser.add_argument("--fleet-only", action="store_true",
                        help="run only the live fleet telemetry leg "
                             "(CI concurrency job)")
    options = parser.parse_args(argv)
    if options.no_fleet and options.fleet_only:
        parser.error("--no-fleet and --fleet-only are exclusive")
    if not options.fleet_only:
        run_bench(quick=options.quick, strict=options.strict,
                  iterations=options.iterations,
                  repeats=options.repeats)
    if not options.no_fleet:
        run_fleet_bench(quick=options.quick)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
