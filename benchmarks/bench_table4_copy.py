"""Table 4: Permedia2 Xfree86 driver, screen-copy test.

Same sweep as Table 3 for the screen-area-copy primitive.  Expected
shape (paper): 94-100%, with the gap visible only on the smallest
copies.
"""

from conftest import record

from repro.perf import format_permedia_table, run_permedia_table


def test_table4_copy(benchmark):
    rows = benchmark.pedantic(
        lambda: run_permedia_table("copy", batch=64),
        rounds=1, iterations=1)
    record("table4_screen_copy", format_permedia_table(rows),
           data=[{"depth": row.depth, "size": row.size,
                  "standard_per_second": row.standard.per_second,
                  "devil_per_second": row.devil.per_second,
                  "ratio": row.ratio}
                 for row in rows])
    for row in rows:
        assert 0.93 <= row.ratio <= 1.01
        if row.size >= 100:
            assert row.ratio >= 0.99
