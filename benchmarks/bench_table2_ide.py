"""Table 2: IDE Linux driver comparative performance.

Regenerates the full sweep: DMA, then PIO with sectors-per-interrupt in
{16, 8, 1} x I/O size in {32, 16} bits, Devil data phase as a C loop
over single-word stubs and as block (rep) stubs.

Expected shape (paper): DMA ratio 100%; PIO with a C loop 88-91%; PIO
with block stubs ~100%; absolute MB/s within ~10% of the paper's
numbers because the cost model is calibrated against its testbed.
"""

from conftest import record

from repro.perf import format_table2, run_table2


def test_table2(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table2(total_sectors=512), rounds=1, iterations=1)
    record("table2_ide", format_table2(rows),
           data=[{"label": row.label(), "mode": row.mode,
                  "sectors_per_irq": row.sectors_per_irq,
                  "io_width": row.io_width,
                  "devil_block": row.devil_block,
                  "standard_mb_s": row.standard.throughput_mb_s,
                  "devil_mb_s": row.devil.throughput_mb_s,
                  "ratio": row.ratio}
                 for row in rows])
    dma = rows[0]
    assert dma.ratio > 0.99
    for row in rows[1:]:
        if row.devil_block:
            assert row.ratio > 0.98, row.label()
        else:
            assert 0.85 < row.ratio < 0.93, row.label()
