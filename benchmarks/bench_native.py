"""Native execution strategy: compiled C dispatch core vs the specializer.

The fourth execution strategy (``bind(..., strategy="native")``)
compiles the generated C stub header plus a small C port of the bus
hot path into a per-spec shared library and drives it through a ctypes
ABI seam.  Single stub calls pay the ctypes marshalling toll, so the
win lives in **batched** dispatch: ``repeat(stub, n, *args)`` crosses
the Python↔C boundary once per batch, and on a plain untraced bus the
batch runs entirely in C (port-table lookup, mask/shift composition,
accounting counters, bounded trace ring).

This bench times three flavours per workload:

* ``specialize``  — per-call loop over the bind-time closures (the
  previous fastest strategy, and the comparison baseline);
* ``native``      — per-call loop over the ctypes wrappers (honest
  overhead number: a single call is *slower* than specialize);
* ``native_batched`` — one ``repeat()`` crossing for the whole loop.

Before timing, the native flavour is replayed against the interpreter
on tracing buses — byte-identical I/O traces and accounting required.
The acceptance floor (cache-served ``get_dx`` batched ≥ 10x the
specializer, release mode) is asserted and the table is recorded as
``results/BENCH_native.{txt,json}`` with environment stamps.

Without a C compiler the script reports the skip and exits cleanly —
the repo stays fully usable, the floor is simply not exercised.

Usage::

    PYTHONPATH=src python benchmarks/bench_native.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for _path in (_HERE, _HERE.parent / "src"):
    if str(_path) not in sys.path:
        sys.path.insert(0, str(_path))

from bench_stub_dispatch import _bind, _machine
from conftest import record

from repro.devil.native import native_available

#: (workload name, machine, setup, stub, args).  ``get_dx`` reads a
#: member of an already-fetched snapshot — pure dispatch overhead, the
#: leg the acceptance floor is pinned to.  The I/O-touching workloads
#: still call back into the Python device models per port operation,
#: so their batched speedups are modest; they are reported for honesty,
#: not floored.
WORKLOADS = [
    ("busmouse/get_dx", "busmouse",
     lambda d: d.get_mouse_state(), "get_dx", ()),
    ("busmouse/set_config", "busmouse", None, "set_config",
     ("CONFIGURATION",)),
    ("ide/status_poll", "ide", None, "get_ide_drq", ()),
    ("permedia2/set_rect_width", "permedia2", None, "set_rect_width",
     (64,)),
]

#: Acceptance floor: batched native must beat the per-call specializer
#: by this factor on the cache-served hot loop (release mode).
NATIVE_FLOOR = 10.0
FLOOR_WORKLOADS = ("busmouse/get_dx",)


def _check_parity(workload, debug: bool, calls: int = 8) -> None:
    """Native per-call and batched runs must issue the interpreter's
    exact I/O trace with identical accounting."""
    name, machine, setup, stub, args = workload
    observed = {}
    for flavour in ("interpret", "native", "native_batched"):
        strategy = "interpret" if flavour == "interpret" else "native"
        bus, bases = _machine(machine, tracing=True)
        device = _bind(machine, strategy, bus, bases, debug)
        if setup is not None:
            setup(device)
        if flavour == "native_batched":
            device.repeat(stub, calls, *args)
        else:
            op = getattr(device, stub)
            for _ in range(calls):
                op(*args)
        observed[flavour] = (list(bus.trace),
                             bus.accounting.snapshot())
    reference = observed["interpret"]
    for flavour in ("native", "native_batched"):
        assert observed[flavour] == reference, \
            f"{name} (debug={debug}): {flavour} diverged from the " \
            f"interpreter"


def _per_call_rate(workload, strategy: str, debug: bool,
                   iterations: int, repeats: int) -> float:
    _, machine, setup, stub, args = workload
    bus, bases = _machine(machine, tracing=False)
    device = _bind(machine, strategy, bus, bases, debug)
    if setup is not None:
        setup(device)
    op = getattr(device, stub)
    op(*args)  # warm caches and lazy paths outside the timed loop
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            op(*args)
        best = min(best, time.perf_counter() - start)
    return iterations / best


def _batched_rate(workload, debug: bool, iterations: int,
                  repeats: int) -> float:
    _, machine, setup, stub, args = workload
    bus, bases = _machine(machine, tracing=False)
    device = _bind(machine, "native", bus, bases, debug)
    if setup is not None:
        setup(device)
    device.repeat(stub, 16, *args)  # warm the direct-mode port table
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        device.repeat(stub, iterations, *args)
        best = min(best, time.perf_counter() - start)
    return iterations / best


def run_bench(quick: bool = False, iterations: int | None = None,
              repeats: int | None = None) -> dict:
    if not native_available():
        print("bench_native: no C compiler found; skipping "
              "(strategy='native' is unavailable on this machine)")
        return {"skipped": "no C compiler"}
    iterations = iterations or (2000 if quick else 100000)
    repeats = repeats or (2 if quick else 3)

    rows = []
    for workload in WORKLOADS:
        name = workload[0]
        for debug in (False, True):
            _check_parity(workload, debug)
            rates = {
                "specialize": _per_call_rate(workload, "specialize",
                                             debug, iterations, repeats),
                "native": _per_call_rate(workload, "native", debug,
                                         iterations, repeats),
                "native_batched": _batched_rate(workload, debug,
                                                iterations, repeats),
            }
            rows.append({
                "workload": name,
                "debug": debug,
                "calls_per_sec": rates,
                "speedup_single": rates["native"] / rates["specialize"],
                "speedup_batched": rates["native_batched"] /
                rates["specialize"],
                "parity": True,
            })

    lines = [
        "Native dispatch, calls/sec (best of "
        f"{repeats} x {iterations} calls; identical I/O traces "
        "verified first):",
        "",
        f"{'workload':<26} {'mode':<8} {'specialize':>12} "
        f"{'native':>12} {'nat batched':>13} {'batch/spec':>10}",
    ]
    for row in rows:
        rates = row["calls_per_sec"]
        lines.append(
            f"{row['workload']:<26} "
            f"{'debug' if row['debug'] else 'release':<8} "
            f"{rates['specialize']:>12,.0f} "
            f"{rates['native']:>12,.0f} "
            f"{rates['native_batched']:>13,.0f} "
            f"{row['speedup_batched']:>9.1f}x")
    lines += [
        "",
        "Single native calls pay the ctypes marshalling toll; the win "
        "is batched",
        "dispatch (one C crossing per repeat()).  I/O-touching "
        "workloads call back",
        "into the Python device models per port op, bounding their "
        "batched speedup.",
    ]
    report = {"quick": quick, "iterations": iterations,
              "repeats": repeats, "native_floor": NATIVE_FLOOR,
              "floor_workloads": list(FLOOR_WORKLOADS), "rows": rows}
    record("BENCH_native", "\n".join(lines), data=report)

    for row in rows:
        if row["workload"] in FLOOR_WORKLOADS and not row["debug"]:
            assert row["speedup_batched"] >= NATIVE_FLOOR, \
                f"{row['workload']}: batched native only " \
                f"{row['speedup_batched']:.2f}x the specializer " \
                f"(floor {NATIVE_FLOOR}x)"
    return report


def test_native_dispatch_quick():
    """Pytest entry point: the quick smoke run (parity + floor)."""
    import pytest
    if not native_available():
        pytest.skip("no C compiler")
    run_bench(quick=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small iteration counts (CI smoke run)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="timed calls per measurement")
    parser.add_argument("--repeats", type=int, default=None,
                        help="measurement repeats (best is kept)")
    options = parser.parse_args(argv)
    run_bench(quick=options.quick, iterations=options.iterations,
              repeats=options.repeats)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
