"""Ablation: structure grouping of volatile variables (§2.1).

Compares a full mouse-state read through the structure (each register
read exactly once, snapshot-consistent) against member-by-member reads
(shared registers read twice, pre-actions replayed, values possibly
torn).  This is the design choice the paper motivates with the
``mouse_state`` structure of Figure 1.
"""

from conftest import record

from repro.perf.micro import structure_grouping_op_count


def test_grouping_ablation(benchmark):
    grouped, ungrouped = benchmark.pedantic(
        structure_grouping_op_count, rounds=1, iterations=1)
    record("ablation_grouping",
           f"grouped structure read: {grouped} I/O ops\n"
           f"member-by-member read:  {ungrouped} I/O ops\n"
           f"saving: {ungrouped - grouped} ops per mouse event "
           f"(and the grouped read is tear-free)",
           data={"grouped": grouped, "ungrouped": ungrouped})
    assert grouped == 8
    assert ungrouped == 10
