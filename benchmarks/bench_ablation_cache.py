"""Ablation: the register cache vs read-modify-write composition.

§2.1: "the variable value can be cached", so writing one variable of a
shared register costs exactly one I/O.  The naive alternative —
re-reading the register to pick up the neighbours' bits — costs an
extra read per shared write and is impossible for write-only registers
(where hand-written drivers keep shadow copies, i.e. a hand-rolled
cache).  This bench quantifies the difference on a shared read-write
register.
"""

from conftest import record

from repro.bus import Bus
from repro.devil.compiler import compile_spec

SHARED = """
device d (base : bit[8] port @ {0}) {
    register r = base @ 0 : bit[8];
    variable lo = r[3..0] : int(4);
    variable hi = r[7..4] : int(4);
}
"""


class Ram:
    def __init__(self):
        self.cells = [0]

    def io_read(self, offset, width):
        return self.cells[offset]

    def io_write(self, offset, value, width):
        self.cells[offset] = value


def _ops(composition: str, writes: int = 50) -> int:
    spec = compile_spec(SHARED)
    bus = Bus()
    bus.map_device(0, 1, Ram())
    device = spec.bind(bus, {"base": 0}, composition=composition)
    for index in range(writes):
        device.set("lo" if index % 2 else "hi", index % 16)
    return bus.accounting.total_ops


def test_cache_ablation(benchmark):
    def run():
        return {"cache": _ops("cache"),
                "read-modify-write": _ops("read-modify-write")}
    ops = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_cache",
           "50 alternating writes to two variables of one register:\n"
           f"  cached composition:       {ops['cache']} I/O ops\n"
           f"  read-modify-write:        {ops['read-modify-write']} "
           f"I/O ops\n"
           "(the cache halves shared-register write traffic and is the\n"
           " only option for write-only registers)",
           data=ops)
    assert ops["cache"] == 50
    assert ops["read-modify-write"] == 100
