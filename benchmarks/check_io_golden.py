#!/usr/bin/env python
"""Port-I/O-count regression gate.

Every shipped workload (and its transactional variant) has a golden
port-I/O profile checked in under ``results/io_golden.json``: total
operations, reads, writes, block transfers, elided reads and coalesced
writes, with the shadow cache off and on.  The gate recomputes the
profile under **all three** execution strategies, fails if the
strategies disagree with each other (the parity invariant) and fails
if any count drifts from the golden file — a one-operation regression
in any stub is a CI failure, exactly like a perf budget.

A third section pins the **fleet**: single-worker fleet runs of the
mixed benchmark schedule are deterministic (round-robin assignment at
submit time, FIFO drain), so their merged port-op totals are golden
numbers too — a scheduler or thread-safe-bus change that alters what
reaches the wire fails here even if throughput and parity both look
fine.

Run with ``--write`` after an intentional change to re-bless the file.

Usage::

    PYTHONPATH=src python benchmarks/check_io_golden.py [--write]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.engine import Fleet, mixed_schedule
from repro.obs.workloads import (
    STRATEGIES,
    TXN_WORKLOADS,
    WORKLOADS,
    run_txn_workload,
    run_workload,
)

GOLDEN = pathlib.Path(__file__).resolve().parent.parent / \
    "results" / "io_golden.json"

COUNTERS = ("total_ops", "reads", "writes", "block_ops",
            "elided_reads", "coalesced_writes")


def _profile(accounting) -> dict:
    return {counter: getattr(accounting, counter)
            for counter in COUNTERS}


def measure() -> dict:
    """The current I/O profile of every workload, parity-checked."""
    table: dict = {"workloads": {}, "txn_workloads": {}}
    suites = (("workloads", WORKLOADS, run_workload),
              ("txn_workloads", TXN_WORKLOADS, run_txn_workload))
    for section, drivers, runner in suites:
        for name in sorted(drivers):
            row: dict = {}
            for label, shadow in (("plain", False), ("shadow", True)):
                profiles = {
                    strategy: _profile(
                        runner(name, strategy, shadow_cache=shadow)[2])
                    for strategy in STRATEGIES}
                reference = profiles["interpret"]
                for strategy, profile in profiles.items():
                    if profile != reference:
                        raise SystemExit(
                            f"parity violation: {section}/{name} "
                            f"({label}) {strategy}={profile} "
                            f"interpret={reference}")
                row[label] = reference
            table[section][name] = row
    table["fleet"] = _measure_fleet()
    return table


#: Deterministic single-worker fleet pins: name -> (devices, requests).
FLEET_CASES = {
    "mixed_2x3": (["ide", "ide", "permedia2", "permedia2",
                   "ne2000", "ne2000"], 8),
    "single_ide": (["ide"], 6),
}


def _measure_fleet() -> dict:
    """Single-worker fleet profiles, parity-checked across strategies."""
    section: dict = {}
    for name, (devices, per_spec) in sorted(FLEET_CASES.items()):
        specs = tuple(dict.fromkeys(devices))
        schedule = mixed_schedule(per_spec, specs=specs)
        profiles = {}
        for strategy in STRATEGIES:
            with Fleet(devices, strategy=strategy, workers=1,
                       policy="round-robin") as fleet:
                fleet.run(schedule)
                profiles[strategy] = _profile(fleet.accounting)
        reference = profiles["interpret"]
        for strategy, profile in profiles.items():
            if profile != reference:
                raise SystemExit(
                    f"parity violation: fleet/{name} "
                    f"{strategy}={profile} interpret={reference}")
        section[name] = reference
    return section


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true",
                        help="re-bless results/io_golden.json")
    options = parser.parse_args(argv)

    current = measure()
    if options.write:
        GOLDEN.write_text(json.dumps(current, indent=2,
                                     sort_keys=True) + "\n")
        print(f"wrote {GOLDEN}")
        return 0

    golden = json.loads(GOLDEN.read_text())
    failures = []
    for section in ("workloads", "txn_workloads", "fleet"):
        golden_rows = golden.get(section, {})
        current_rows = current.get(section, {})
        for name in sorted(set(golden_rows) | set(current_rows)):
            expected = golden_rows.get(name)
            actual = current_rows.get(name)
            if expected != actual:
                failures.append(
                    f"{section}/{name}:\n"
                    f"  golden:  {json.dumps(expected, sort_keys=True)}\n"
                    f"  current: {json.dumps(actual, sort_keys=True)}")
    if failures:
        print("port-I/O count regression(s):\n" + "\n".join(failures))
        print("\nIf the change is intentional, re-bless with:\n"
              "  PYTHONPATH=src python benchmarks/check_io_golden.py "
              "--write")
        return 1
    total = sum(len(golden[section]) for section in golden)
    print(f"io golden: {total} workload profiles match "
          f"({len(STRATEGIES)} strategies each)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
