#!/usr/bin/env python
"""Port-I/O-count regression gate.

Every shipped workload (and its transactional variant) has a golden
port-I/O profile checked in under ``results/io_golden.json``: total
operations, reads, writes, block transfers, elided reads and coalesced
writes, with the shadow cache off and on.  The gate recomputes the
profile under **all three** execution strategies, fails if the
strategies disagree with each other (the parity invariant) and fails
if any count drifts from the golden file — a one-operation regression
in any stub is a CI failure, exactly like a perf budget.

A third section pins the **fleet**: single-worker fleet runs of the
mixed benchmark schedule are deterministic (round-robin assignment at
submit time, FIFO drain), so their merged port-op totals are golden
numbers too — a scheduler or thread-safe-bus change that alters what
reaches the wire fails here even if throughput and parity both look
fine.

Run with ``--write`` after an intentional change to re-bless the file.

Usage::

    PYTHONPATH=src python benchmarks/check_io_golden.py [--write]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.engine import Fleet, mixed_schedule
from repro.obs.workloads import (
    STRATEGIES,
    TXN_WORKLOADS,
    WORKLOADS,
    run_txn_workload,
    run_workload,
)

GOLDEN = pathlib.Path(__file__).resolve().parent.parent / \
    "results" / "io_golden.json"

COUNTERS = ("total_ops", "reads", "writes", "block_ops",
            "elided_reads", "coalesced_writes")


def _profile(accounting) -> dict:
    return {counter: getattr(accounting, counter)
            for counter in COUNTERS}


def _native_checkable() -> bool:
    from repro.devil.native import native_available
    return native_available()


def measure() -> dict:
    """The current I/O profile of every workload, parity-checked.

    When a C compiler is present, the ``native`` strategy is
    cross-checked against the same interpreter reference for every
    plain (non-shadow, non-transactional) workload — it never changes
    the pinned numbers, it must merely match them.  The shadow-cache
    and transactional variants are interpreter-family features the
    native binding rejects by design, so they stay three-strategy.
    """
    check_native = _native_checkable()
    table: dict = {"workloads": {}, "txn_workloads": {}}
    suites = (("workloads", WORKLOADS, run_workload),
              ("txn_workloads", TXN_WORKLOADS, run_txn_workload))
    for section, drivers, runner in suites:
        for name in sorted(drivers):
            row: dict = {}
            for label, shadow in (("plain", False), ("shadow", True)):
                strategies = list(STRATEGIES)
                if check_native and section == "workloads" \
                        and not shadow:
                    strategies.append("native")
                profiles = {
                    strategy: _profile(
                        runner(name, strategy, shadow_cache=shadow)[2])
                    for strategy in strategies}
                reference = profiles["interpret"]
                for strategy, profile in profiles.items():
                    if profile != reference:
                        raise SystemExit(
                            f"parity violation: {section}/{name} "
                            f"({label}) {strategy}={profile} "
                            f"interpret={reference}")
                row[label] = reference
            table[section][name] = row
    table["fleet"] = _measure_fleet()
    return table


#: Deterministic fleet pins.  Each case pins the merged port-op
#: profile *and* the request placement (``completed_by_device``) —
#: both are pure functions of submission order under the
#: deterministic policies, so the scheduler itself is under the
#: golden gate: a tie-break or credit-accounting change in
#: round-robin or weighted-round-robin shows up as a placement diff
#: here even when the port totals happen to survive.
FLEET_CASES = {
    "mixed_2x3": {
        "devices": ["ide", "ide", "permedia2", "permedia2",
                    "ne2000", "ne2000"],
        "per_spec": 8,
    },
    "single_ide": {"devices": ["ide"], "per_spec": 6},
    # The smooth weighted round-robin pin: 3:1 credits over two disks
    # must place requests 6:2 — and identically on the process
    # backend (cross-checked below).
    "weighted_ide_3to1": {
        "devices": ["ide", "ide"],
        "per_spec": 8,
        "policy": "weighted-round-robin",
        "weights": {"ide0": 3, "ide1": 1},
    },
}


def _measure_fleet() -> dict:
    """Single-worker fleet profiles, parity-checked across strategies
    and cross-checked against the process backend — and, when a C
    compiler is present, against the native substrate on both
    backends."""
    from repro.engine import ProcessFleet

    section: dict = {}
    for name, case in sorted(FLEET_CASES.items()):
        devices = case["devices"]
        policy = case.get("policy", "round-robin")
        weights = case.get("weights")
        specs = tuple(dict.fromkeys(devices))
        schedule = mixed_schedule(case["per_spec"], specs=specs)
        profiles = {}
        placements = {}
        for strategy in STRATEGIES:
            with Fleet(devices, strategy=strategy, workers=1,
                       policy=policy, weights=weights) as fleet:
                fleet.run(schedule)
                profiles[strategy] = _profile(fleet.accounting)
                placements[strategy] = fleet.completed_by_device()
        reference = profiles["interpret"]
        placement = placements["interpret"]
        for strategy in STRATEGIES:
            if profiles[strategy] != reference \
                    or placements[strategy] != placement:
                raise SystemExit(
                    f"parity violation: fleet/{name} "
                    f"{strategy}={profiles[strategy]}/"
                    f"{placements[strategy]} "
                    f"interpret={reference}/{placement}")
        # The process backend must match the pins on both its
        # transports: unbatched (one queue message per request) and
        # batched (grouped placements + shared-memory result rings).
        # Batching is transport-only — a placement or port-count diff
        # here means it leaked into semantics.
        for transport, fleet_kwargs in (
                ("unbatched", {"batch_size": 1, "ring_bytes": 0}),
                ("batched", {"batch_size": 8})):
            with ProcessFleet(devices, workers=2, policy=policy,
                              weights=weights, **fleet_kwargs) as fleet:
                fleet.run(schedule)
                process_profile = _profile(fleet.accounting)
                process_placement = fleet.completed_by_device()
            if process_profile != reference \
                    or process_placement != placement:
                raise SystemExit(
                    f"backend divergence: fleet/{name} process "
                    f"backend ({transport}) "
                    f"{process_profile}/{process_placement} vs thread "
                    f"{reference}/{placement}")
        # The native fleet substrate (C dispatch core, direct-mode
        # batches, C-resident device models) must hit the same pins on
        # both backends.  Like the per-workload native cross-check, it
        # never changes the pinned numbers — it must merely match.
        if _native_checkable():
            for backend, builder in (
                    ("thread", lambda: Fleet(
                        devices, strategy="native", workers=1,
                        policy=policy, weights=weights)),
                    ("process", lambda: ProcessFleet(
                        devices, strategy="native", workers=2,
                        policy=policy, weights=weights))):
                with builder() as fleet:
                    fleet.run(schedule)
                    native_profile = _profile(fleet.accounting)
                    native_placement = fleet.completed_by_device()
                if native_profile != reference \
                        or native_placement != placement:
                    raise SystemExit(
                        f"backend divergence: fleet/{name} native "
                        f"{backend} backend "
                        f"{native_profile}/{native_placement} vs "
                        f"{reference}/{placement}")
        section[name] = {"ports": reference, "completed": placement}
    return section


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true",
                        help="re-bless results/io_golden.json")
    options = parser.parse_args(argv)

    current = measure()
    if options.write:
        GOLDEN.write_text(json.dumps(current, indent=2,
                                     sort_keys=True) + "\n")
        print(f"wrote {GOLDEN}")
        return 0

    golden = json.loads(GOLDEN.read_text())
    failures = []
    for section in ("workloads", "txn_workloads", "fleet"):
        golden_rows = golden.get(section, {})
        current_rows = current.get(section, {})
        for name in sorted(set(golden_rows) | set(current_rows)):
            expected = golden_rows.get(name)
            actual = current_rows.get(name)
            if expected != actual:
                failures.append(
                    f"{section}/{name}:\n"
                    f"  golden:  {json.dumps(expected, sort_keys=True)}\n"
                    f"  current: {json.dumps(actual, sort_keys=True)}")
    if failures:
        print("port-I/O count regression(s):\n" + "\n".join(failures))
        print("\nIf the change is intentional, re-bless with:\n"
              "  PYTHONPATH=src python benchmarks/check_io_golden.py "
              "--write")
        return 1
    total = sum(len(golden[section]) for section in golden)
    native_note = " + native cross-check" if _native_checkable() \
        else " (native skipped: no C compiler)"
    print(f"io golden: {total} workload profiles match "
          f"({len(STRATEGIES)} strategies each{native_note})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
