"""§4.3 micro-analysis: per-stub costs and the shared-register penalty.

Two kinds of measurement:

* I/O-operation counts (exact, from the bus): a single stub performs
  exactly the hand-written access; independent variables over one
  register cost one operation each; structure grouping reads each
  register once.
* Python-level call timing (pytest-benchmark): the interpreting stub
  vs the generated (compiled) stub vs a raw bus access.  In the paper
  the generated C inlines to the hand-written code; here the generated
  Python module plays that role.
"""

import dataclasses

from conftest import record

from repro.bus import Bus
from repro.devices.busmouse import BusmouseModel
from repro.perf.micro import (
    shared_register_op_count,
    single_stub_op_count,
    structure_grouping_op_count,
)
from repro.specs import compile_shipped


def test_micro_op_counts(benchmark):
    def run():
        return (single_stub_op_count(), shared_register_op_count(),
                structure_grouping_op_count())
    single, shared, grouping = benchmark.pedantic(run, rounds=1,
                                                  iterations=1)
    lines = [
        f"single stub write:      hand={single.hand_written} "
        f"devil={single.devil} (overhead {single.overhead})",
        f"3 vars on one register: hand={shared.hand_written} "
        f"devil={shared.devil} (overhead {shared.overhead})",
        f"mouse state read:       grouped={grouping[0]} "
        f"ungrouped={grouping[1]}",
    ]
    record("micro_stub_costs", "\n".join(lines),
           data={"single": dataclasses.asdict(single),
                 "shared": dataclasses.asdict(shared),
                 "grouping": {"grouped": grouping[0],
                              "ungrouped": grouping[1]}})
    assert single.overhead == 0
    assert shared.overhead == 2
    assert grouping[0] < grouping[1]


def _mouse(debug):
    bus = Bus()
    bus.map_device(0x23C, 4, BusmouseModel(), "busmouse")
    return compile_shipped("busmouse").bind(bus, {"base": 0x23C},
                                            debug=debug), bus


def test_interpreted_stub_call(benchmark):
    device, _ = _mouse(debug=False)
    benchmark(device.set_config, "CONFIGURATION")


def test_generated_stub_call(benchmark):
    spec = compile_shipped("busmouse")
    namespace = {}
    exec(compile(spec.emit_python(), "gen.py", "exec"), namespace)
    bus = Bus()
    bus.map_device(0x23C, 4, BusmouseModel(), "busmouse")
    stubs = namespace["LogitechBusmouseStubs"](bus, 0x23C)
    benchmark(stubs.set_config, "CONFIGURATION")


def test_raw_bus_access(benchmark):
    bus = Bus()
    bus.map_device(0x23C, 4, BusmouseModel(), "busmouse")
    benchmark(bus.outb, 0x91, 0x23F)


def _native_mouse():
    import pytest

    from repro.devil.native import native_available
    if not native_available():
        pytest.skip("no C compiler")
    bus = Bus()
    bus.map_device(0x23C, 4, BusmouseModel(), "busmouse")
    return compile_shipped("busmouse").bind(
        bus, {"base": 0x23C}, debug=False, strategy="native")


def test_native_stub_call(benchmark):
    """One ctypes crossing per call — the honest single-call cost."""
    device = _native_mouse()
    benchmark(device.set_config, "CONFIGURATION")


def test_native_batched_call(benchmark):
    """1000 cache-served reads per C crossing; reported per batch."""
    device = _native_mouse()
    device.get_mouse_state()
    device.repeat("get_dx", 16)
    benchmark(device.repeat, "get_dx", 1000)
