"""Fleet throughput: requests/sec and scaling efficiency by worker count.

The tentpole measurement for the concurrent device-fleet engine: a
mixed fleet — IDE disks serving one-sector PIO reads, Permedia2 GPUs
filling rectangles, NE2000 NICs polling their receive rings — is
driven through :class:`repro.engine.Fleet` with 1, 2, 4 and 8 workers
and the same request schedule, and we measure end-to-end requests/sec.

The machines charge a **sleeping** port latency per bus operation
(``--latency-us``, default 20.0 plus 0.2 per block word).  The sleep
releases the GIL, so — exactly like real programmed I/O stalling one
core while others keep working — latency on one device overlaps with
computation and latency on others.  This is deliberately different
from ``bench_coalesce.py``'s busy-wait latency, which holds the GIL
and would (correctly) show that pure Python bookkeeping does not scale
across threads.  What scales is what scales on hardware: the I/O wait.

Reported per worker count:

* requests/sec over the whole mixed schedule;
* speedup vs the single worker;
* scaling efficiency (speedup / workers);
* exactness — merged accounting totals must be identical across all
  worker counts (the deterministic round-robin schedule guarantees it,
  the thread-safe bus makes it true under contention).

Acceptance floors (CI-enforced): >= 2.5x throughput at 4 workers, and
identical port-op totals at every worker count.  An 8-thread
single-device stress leg (exact accounting + state parity vs a serial
reference, every strategy — native included when a C compiler is
present) rides along so a scheduling or locking regression fails this
benchmark even when throughput looks healthy.  Results land in ``results/BENCH_fleet.{txt,json}``.

Runs standalone (``python benchmarks/bench_fleet.py [--quick]``, the
CI smoke step) and under pytest via :func:`test_fleet_bench_quick`.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for _path in (_HERE, _HERE.parent / "src"):
    if str(_path) not in sys.path:
        sys.path.insert(0, str(_path))

from conftest import record

from repro.engine import (
    Fleet,
    ProcessFleet,
    ide_sector_read,
    mixed_schedule,
    run_stress,
)

#: Acceptance floor: 4 workers must deliver at least this speedup.
MIN_SPEEDUP_AT_4 = 2.5

WORKER_COUNTS = (1, 2, 4, 8)

#: The mixed fleet: 4 disks, 4 GPUs, 4 NICs on one bus.
FLEET = ["ide"] * 4 + ["permedia2"] * 4 + ["ne2000"] * 4


def run_fleet(workers: int, schedule, strategy: str,
              latency_us: float, word_latency_us: float,
              backend: str = "thread"):
    """One timed run; returns (requests/sec, accounting snapshot)."""
    cls = ProcessFleet if backend == "process" else Fleet
    with cls(FLEET, strategy=strategy, workers=workers,
             policy="round-robin", queue_depth=64,
             op_latency_us=latency_us,
             word_latency_us=word_latency_us) as fleet:
        start = time.perf_counter()
        fleet.run(schedule)
        elapsed = time.perf_counter() - start
        accounting = fleet.accounting
        if backend == "thread":
            accounting = accounting.snapshot()
        assert fleet.completed() == len(schedule)
    return len(schedule) / elapsed, accounting


def scaling_table(schedule, strategy: str, latency_us: float,
                  word_latency_us: float, backend: str = "thread"):
    """Throughput at each worker count + exactness cross-check."""
    rows = []
    reference = None
    base_rate = None
    for workers in WORKER_COUNTS:
        rate, accounting = run_fleet(workers, schedule, strategy,
                                     latency_us, word_latency_us,
                                     backend)
        if reference is None:
            reference = accounting
            base_rate = rate
        elif accounting != reference:
            raise AssertionError(
                f"accounting diverged at {workers} workers:\n"
                f"  1 worker : {reference}\n"
                f"  {workers} workers: {accounting}")
        speedup = rate / base_rate
        rows.append({"workers": workers, "rps": rate,
                     "speedup": speedup,
                     "efficiency": speedup / workers})
    return rows, reference


def render(rows, accounting, strategy, schedule_len, latency_us,
           word_latency_us, stress_iterations,
           backend: str = "thread") -> str:
    lines = [
        "Fleet throughput: mixed workload "
        "(4x IDE sector read, 4x PM2 fill rect, 4x NE2000 ring poll)",
        f"backend={backend}  strategy={strategy}  "
        f"requests={schedule_len}  "
        f"latency={latency_us:.1f}us/op + {word_latency_us:.2f}us/word",
        "",
        f"{'workers':>8} | {'req/s':>10} | {'speedup':>8} | "
        f"{'efficiency':>10}",
        "-" * 46,
    ]
    for row in rows:
        lines.append(
            f"{row['workers']:>8} | {row['rps']:>10.1f} | "
            f"{row['speedup']:>7.2f}x | {row['efficiency']:>9.0%}")
    lines += [
        "",
        f"port ops (identical at every worker count): "
        f"total={accounting.total_ops} reads={accounting.reads} "
        f"writes={accounting.writes} block_ops={accounting.block_ops} "
        f"block_words={accounting.block_words}",
        f"stress: 8 threads x 1 device x {stress_iterations} iterations "
        f"per strategy — exact accounting + state parity vs serial "
        f"reference: ok",
    ]
    return "\n".join(lines)


def stress_leg(iterations: int) -> None:
    """The ISSUE acceptance stress: 8 threads against one device."""
    from repro.devil.native import native_available

    schedule = [("ide", ide_sector_read)] * 16
    strategies = ["interpret", "specialize", "generated"]
    if native_available():
        strategies.append("native")
    for strategy in strategies:
        reference = None
        for _ in range(iterations):
            reference = run_stress(["ide"], schedule, workers=8,
                                   strategy=strategy,
                                   reference=reference)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small schedule + fewer stress iterations "
                             "(CI smoke)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per spec in the mixed schedule")
    parser.add_argument("--strategy", default="specialize",
                        choices=("interpret", "specialize", "generated",
                                 "native", "auto"))
    parser.add_argument("--backend", default="thread",
                        choices=("thread", "process"),
                        help="fleet backend; the speedup floor applies "
                             "to the thread backend only (this is a "
                             "GIL-releasing I/O workload — see "
                             "bench_fleet_mp.py for the CPU-bound "
                             "comparison the process backend wins)")
    parser.add_argument("--latency-us", type=float, default=20.0,
                        help="sleeping latency charged per port op")
    parser.add_argument("--word-latency-us", type=float, default=0.2,
                        help="extra latency per block word")
    parser.add_argument("--stress-iterations", type=int, default=None)
    args = parser.parse_args(argv)

    per_spec = args.requests or (24 if args.quick else 64)
    stress_iterations = args.stress_iterations \
        or (10 if args.quick else 100)
    schedule = mixed_schedule(per_spec)

    rows, accounting = scaling_table(schedule, args.strategy,
                                     args.latency_us,
                                     args.word_latency_us,
                                     args.backend)
    stress_leg(stress_iterations)

    table = render(rows, accounting, args.strategy, len(schedule),
                   args.latency_us, args.word_latency_us,
                   stress_iterations, args.backend)
    record("BENCH_fleet", table, data={
        "backend": args.backend,
        "strategy": args.strategy,
        "requests": len(schedule),
        "latency_us": args.latency_us,
        "word_latency_us": args.word_latency_us,
        "rows": rows,
        "port_ops": {
            "total_ops": accounting.total_ops,
            "reads": accounting.reads,
            "writes": accounting.writes,
            "block_ops": accounting.block_ops,
            "block_words": accounting.block_words,
        },
        "stress_iterations": stress_iterations,
    })

    at4 = next(row for row in rows if row["workers"] == 4)
    if args.backend != "thread":
        print(f"INFO: {at4['speedup']:.2f}x at 4 workers "
              f"({args.backend} backend; the {MIN_SPEEDUP_AT_4}x "
              f"floor applies to the thread backend)")
        return 0
    if at4["speedup"] < MIN_SPEEDUP_AT_4:
        print(f"FAIL: {at4['speedup']:.2f}x at 4 workers "
              f"(floor {MIN_SPEEDUP_AT_4}x)", file=sys.stderr)
        return 1
    print(f"OK: {at4['speedup']:.2f}x at 4 workers "
          f"(floor {MIN_SPEEDUP_AT_4}x)")
    return 0


def test_fleet_bench_quick():
    """Pytest entry: tiny schedule, no acceptance floor on speed.

    Exactness (identical accounting at every worker count) and the
    stress leg still assert; only the throughput floor is waived — CI
    machines under load make wall-clock floors flaky in unit tests,
    and the floor is enforced by the standalone CI smoke run instead.
    """
    schedule = mixed_schedule(8)
    rows, accounting = scaling_table(schedule, "specialize", 20.0, 0.2)
    assert accounting.total_ops > 0
    assert len(rows) == len(WORKER_COUNTS)
    stress_leg(3)


if __name__ == "__main__":
    sys.exit(main())
