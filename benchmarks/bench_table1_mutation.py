"""Table 1: language error-detection coverage (mutation analysis).

Regenerates the paper's robustness study: single-character mutants over
the hardware operating code of three drivers, in C, Devil and CDevil.
Expected shape (paper values in parentheses): mutants of Devil
specifications are nearly always detected (<2 undetected per site,
paper: 0.2-1.6); C leaves an order of magnitude more silent failures;
the Devil-based rows have 1.2-5x fewer vulnerable sites (paper:
1.6-5.2x).

Set DEVIL_MUTATION_QUICK=1 to run with a small uniform mutant budget.
"""

import os

from conftest import record

from repro.mutation import MutantCaps, format_table, run_table1


def _caps():
    if os.environ.get("DEVIL_MUTATION_QUICK"):
        return MutantCaps.quick(6)
    return MutantCaps()


def _row_data(rows):
    def outcome(o):
        return {"language": o.language, "lines": o.lines_of_code,
                "sites": o.sites, "mutants": o.total_mutants,
                "undetected": o.total_undetected,
                "undetected_per_site": o.undetected_per_site,
                "sites_with_undetected": o.sites_with_undetected}
    return [{"device": row.device,
             "c": outcome(row.c),
             "devil": outcome(row.devil),
             "cdevil": outcome(row.cdevil),
             "ratio_cdevil": row.ratio_cdevil(),
             "ratio_combined": row.ratio_combined()}
            for row in rows]


def test_table1_busmouse(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table1(_caps(), devices=("busmouse",)),
        rounds=1, iterations=1)
    record("table1_busmouse", format_table(rows), data=_row_data(rows))
    (device_rows,) = rows
    assert device_rows.devil.undetected_per_site < 2.0
    assert device_rows.ratio_combined() > 1.0


def test_table1_ide(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table1(_caps(), devices=("ide",)),
        rounds=1, iterations=1)
    record("table1_ide", format_table(rows), data=_row_data(rows))
    (device_rows,) = rows
    assert device_rows.devil.undetected_per_site < 2.0
    assert device_rows.ratio_combined() > 1.0


def test_table1_ne2000(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table1(_caps(), devices=("ne2000",)),
        rounds=1, iterations=1)
    record("table1_ethernet", format_table(rows), data=_row_data(rows))
    (device_rows,) = rows
    assert device_rows.devil.undetected_per_site < 2.0
    assert device_rows.ratio_combined() > 1.0
