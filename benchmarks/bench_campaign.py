"""Campaign engine: fleet scaling and verdict-cache incrementality.

Runs one mutation campaign scope cold on all three execution
substrates (serial reference, thread fleet, process fleet), asserts
the reports are byte-identical, then re-runs against the warm verdict
cache and measures the speedup — the campaign's incrementality claim
(an unchanged immediate re-run must be at least an order of magnitude
faster, since it evaluates nothing).

Default scope: all 8 shipped specs, all styles, uniform quick budget —
Table 1 at campaign scale, with the paper's rows emitted as the
projection.  Set DEVIL_MUTATION_QUICK=1 for the CI smoke scope (two
specs, minimal budget).
"""

from __future__ import annotations

import os
import tempfile
import time

from conftest import record

from repro.mutation import (
    CampaignConfig,
    MutantCaps,
    VerdictCache,
    format_table,
    run_campaign,
)

#: Cold-vs-warm floor: an unchanged re-run serves every verdict from
#: disk, so it must beat the evaluation run by at least this factor.
WARM_SPEEDUP_FLOOR = 10.0


def _scope() -> dict:
    if os.environ.get("DEVIL_MUTATION_QUICK"):
        return {"specs": ("busmouse", "pic8259"),
                "caps": MutantCaps.quick(2)}
    return {"caps": MutantCaps.quick(8)}  # all 8 specs, all styles


def _timed(config: CampaignConfig, cache: VerdictCache):
    start = time.perf_counter()
    result = run_campaign(config, cache=cache)
    return result, time.perf_counter() - start


def test_campaign_backends_and_cache(benchmark):
    scope = _scope()
    workers = min(4, os.cpu_count() or 1)
    runs: dict[str, dict] = {}

    with tempfile.TemporaryDirectory() as serial_root, \
            tempfile.TemporaryDirectory() as thread_root, \
            tempfile.TemporaryDirectory() as process_root:
        serial_cfg = CampaignConfig(backend="serial", **scope)
        serial = benchmark.pedantic(
            lambda: run_campaign(serial_cfg,
                                 cache=VerdictCache(serial_root)),
            rounds=1, iterations=1)
        reference = serial.report.to_json()
        runs["serial"] = serial.stats()

        for backend, root in (("thread", thread_root),
                              ("process", process_root)):
            result, elapsed = _timed(
                CampaignConfig(backend=backend, workers=workers,
                               **scope),
                VerdictCache(root))
            assert result.report.to_json() == reference, \
                f"{backend} report diverged from serial"
            assert result.salvaged == 0
            runs[backend] = result.stats() | {"elapsed_s": elapsed}

        warm, warm_elapsed = _timed(serial_cfg,
                                    VerdictCache(serial_root))
        assert warm.evaluated == 0
        assert warm.cache_hits == warm.units == serial.units
        assert warm.report.to_json() == reference
        speedup = serial.elapsed_s / warm_elapsed
        assert speedup >= WARM_SPEEDUP_FLOOR, \
            (f"warm re-run only {speedup:.1f}x faster "
             f"({serial.elapsed_s:.2f}s cold, {warm_elapsed:.2f}s warm)")

    lines = [
        f"campaign scope: {len(serial_cfg.specs)} specs, "
        f"budget {serial_cfg.caps.ident}, {serial.units} units",
        f"{'backend':<10} {'workers':>7} {'evaluated':>9} "
        f"{'elapsed_s':>10} {'speedup':>8}",
    ]
    for backend in ("serial", "thread", "process"):
        stats = runs[backend]
        lines.append(
            f"{backend:<10} {stats['workers'] if backend != 'serial' else 1:>7} "
            f"{stats['evaluated']:>9} {stats['elapsed_s']:>10.2f} "
            f"{serial.elapsed_s / stats['elapsed_s']:>8.2f}")
    lines.append(
        f"{'warm':<10} {1:>7} {warm.evaluated:>9} "
        f"{warm_elapsed:>10.3f} {speedup:>8.1f}")
    lines.append("")
    lines.append("all three backends byte-identical; warm re-run "
                 f"served {warm.cache_hits}/{warm.units} verdicts "
                 "from cache")
    rows = serial.report.table1_rows()
    if rows:
        lines.append("")
        lines.append(format_table(serial.report.table1_device_rows()))

    record("BENCH_campaign", "\n".join(lines), data={
        "scope": serial_cfg.describe(),
        "units": serial.units,
        "runs": runs,
        "warm": warm.stats() | {"elapsed_s": warm_elapsed,
                                "speedup_vs_cold": speedup},
        "table1": rows,
    })
