"""The introduction's claim: bit operations are a large fraction of
hardware operating code ("up to 30% of driver code", measured on Linux
2.2-12 drivers).

Regenerates the measurement over this repository's corpus and checks
the complementary claim: the CDevil rewrites contain fewer raw bit
operations, because masking and shifting moved into the generated
stubs.
"""

from conftest import record

from repro.mutation.bitops_survey import format_survey, run_survey


def test_bitops_survey(benchmark):
    reports = benchmark.pedantic(run_survey, rounds=1, iterations=1)
    record("bitops_survey", format_survey(reports),
           data=[{"name": report.name,
                  "total_lines": report.total_lines,
                  "bitop_lines": report.bitop_lines,
                  "bitop_tokens": report.bitop_tokens,
                  "hex_literals": report.hex_literals,
                  "line_fraction": report.line_fraction}
                 for report in reports])
    by_name = {report.name: report for report in reports}
    for name in ("busmouse (C)", "ide (C)", "ne2000 (C)"):
        assert by_name[name].line_fraction > 0.10
    assert by_name["ne2000 (CDevil)"].bitop_tokens < \
        by_name["ne2000 (C)"].bitop_tokens
    assert by_name["busmouse (CDevil)"].bitop_tokens < \
        by_name["busmouse (C)"].bitop_tokens
