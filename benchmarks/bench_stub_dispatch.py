"""Stub dispatch cost: interpreted vs specialized vs generated stubs.

The tentpole measurement for bind-time stub specialization
(:mod:`repro.devil.specialize`): partial evaluation folds masks,
shifts, neutral values, enum tables and absolute port addresses into
straight-line closures, so a stub call stops walking the resolved
model.  This bench times calls/sec of representative stubs on the
busmouse, IDE and Permedia2 machines for the three execution flavours:

* ``interpret`` — ``bind(..., strategy="interpret")``, the default
  model-walking runtime;
* ``specialize`` — ``bind(..., strategy="specialize")``, closures
  compiled at bind time;
* ``generated`` — the standalone module from ``emit_python`` (the
  repository's stand-in for the paper's compiled C stubs).

When a C compiler is present a fourth leg times a batched native
``repeat()`` on the busmouse ``get_dx`` loop and enforces the
``NATIVE_FLOOR`` over the specializer; the full native table lives in
``bench_native.py``.

Before timing, every workload is replayed on tracing buses and the
I/O traces and accounting counters of all three flavours must be
identical — speed must not change semantics.  The script asserts the
acceptance floor (specialized ≥ 3x interpreted on the busmouse
``get_dx`` and IDE status workloads) and records the table plus a
machine-readable payload as ``results/BENCH_stub_dispatch.{txt,json}``.

Runs standalone (``python benchmarks/bench_stub_dispatch.py
[--quick]``, no pytest needed — this is what CI's smoke step does) and
under pytest via :func:`test_stub_dispatch_quick`.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for _path in (_HERE, _HERE.parent / "src"):
    if str(_path) not in sys.path:
        sys.path.insert(0, str(_path))

from conftest import record

from repro.bus import Bus
from repro.devices.busmouse import REGION_SIZE as MOUSE_REGION
from repro.devices.busmouse import BusmouseModel
from repro.devices.ide import REGION_SIZE as IDE_REGION
from repro.devices.ide import IdeControlPort, IdeDiskModel
from repro.devices.permedia2 import REGION_SIZE as PM2_REGION
from repro.devices.permedia2 import Permedia2Aperture, Permedia2Model
from repro.specs import compile_shipped

MOUSE_BASE = 0x23C
IDE_BASE = 0x1F0
IDE_CTRL = 0x3F6
PM2_REGS = 0xF000
PM2_FB = 0xF800

STRATEGIES = ("interpret", "specialize", "generated")

#: (workload name, machine, setup, one timed call).  The setup runs
#: once per binding; ``get_dx`` deliberately reads a member of an
#: already-fetched snapshot — the purest dispatch-overhead probe.
WORKLOADS = [
    ("busmouse/get_dx", "busmouse",
     lambda d: d.get_mouse_state(), lambda d: d.get_dx()),
    ("busmouse/get_mouse_state", "busmouse",
     None, lambda d: d.get_mouse_state()),
    ("busmouse/set_config", "busmouse",
     None, lambda d: d.set_config("CONFIGURATION")),
    ("ide/status_poll", "ide",
     None, lambda d: d.get_ide_drq()),
    ("ide/set_sector_count", "ide",
     None, lambda d: d.set_sector_count(1)),
    ("permedia2/get_fifo_space", "permedia2",
     None, lambda d: d.get_fifo_space()),
    ("permedia2/set_rect_width", "permedia2",
     None, lambda d: d.set_rect_width(64)),
]

#: Acceptance floor: specialized must beat interpreted by this factor
#: on the two hot-path workloads (release mode).
SPEEDUP_FLOOR = 3.0
FLOOR_WORKLOADS = ("busmouse/get_dx", "ide/status_poll")

#: Acceptance floor for the fourth strategy: a batched native
#: ``repeat()`` must beat the per-call specializer by this factor on
#: the cache-served busmouse ``get_dx`` loop (release mode).  Only
#: enforced when a C compiler is present; ``bench_native.py`` holds
#: the full native table and the 10x tentpole floor.
NATIVE_FLOOR = 5.0
NATIVE_FLOOR_WORKLOAD = "busmouse/get_dx"


def _machine(name: str, tracing: bool,
             bus_factory=Bus) -> tuple[Bus, dict[str, int]]:
    bus = bus_factory(tracing=tracing)
    if name == "busmouse":
        bus.map_device(MOUSE_BASE, MOUSE_REGION, BusmouseModel(),
                       "busmouse")
        return bus, {"base": MOUSE_BASE}
    if name == "ide":
        disk = IdeDiskModel(total_sectors=16)
        bus.map_device(IDE_BASE, IDE_REGION, disk, "ide")
        bus.map_device(IDE_CTRL, 1, IdeControlPort(disk), "ide-ctrl")
        return bus, {"cmd": IDE_BASE, "data": IDE_BASE,
                     "data32": IDE_BASE, "ctrl": IDE_CTRL}
    if name == "permedia2":
        gpu = Permedia2Model(width=64, height=48)
        bus.map_device(PM2_REGS, PM2_REGION, gpu, "permedia2")
        bus.map_device(PM2_FB, 1, Permedia2Aperture(gpu), "permedia2-fb")
        return bus, {"regs": PM2_REGS, "fb": PM2_FB}
    raise ValueError(f"no machine for {name!r}")


_GENERATED_CLASSES: dict[str, type] = {}


def _generated_class(name: str) -> type:
    cls = _GENERATED_CLASSES.get(name)
    if cls is None:
        spec = compile_shipped(name)
        namespace: dict = {}
        exec(compile(spec.emit_python(), f"<gen:{name}>", "exec"),
             namespace)
        for value in namespace.values():
            if isinstance(value, type) and \
                    value.__name__.endswith("Stubs"):
                cls = value
        assert cls is not None, f"no stub class generated for {name}"
        _GENERATED_CLASSES[name] = cls
    return cls


def _bind(name: str, strategy: str, bus: Bus, bases: dict[str, int],
          debug: bool):
    spec = compile_shipped(name)
    if strategy == "generated":
        cls = _generated_class(name)
        return cls(bus, *[bases[param] for param in spec.model.params],
                   debug=debug)
    return spec.bind(bus, bases, debug=debug, strategy=strategy)


def _check_parity(workload, debug: bool, calls: int = 8) -> None:
    """Replay ``workload`` on tracing buses; all flavours must issue a
    byte-identical I/O trace with identical accounting."""
    name, machine, setup, op = workload
    observed = {}
    for strategy in STRATEGIES:
        bus, bases = _machine(machine, tracing=True)
        device = _bind(machine, strategy, bus, bases, debug)
        if setup is not None:
            setup(device)
        for _ in range(calls):
            op(device)
        observed[strategy] = (list(bus.trace),
                              bus.accounting.snapshot())
    reference = observed["interpret"]
    for strategy in ("specialize", "generated"):
        assert observed[strategy] == reference, \
            f"{name} (debug={debug}): {strategy} diverged from " \
            f"the interpreter"


def _calls_per_sec(workload, strategy: str, debug: bool,
                   iterations: int, repeats: int) -> float:
    _, machine, setup, op = workload
    bus, bases = _machine(machine, tracing=False)
    device = _bind(machine, strategy, bus, bases, debug)
    if setup is not None:
        setup(device)
    op(device)  # warm caches and lazy paths outside the timed loop
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            op(device)
        best = min(best, time.perf_counter() - start)
    return iterations / best


def run_bench(quick: bool = False, iterations: int | None = None,
              repeats: int | None = None) -> dict:
    iterations = iterations or (1000 if quick else 10000)
    repeats = repeats or (2 if quick else 3)

    rows = []
    for workload in WORKLOADS:
        name = workload[0]
        for debug in (False, True):
            _check_parity(workload, debug)
            rates = {strategy: _calls_per_sec(workload, strategy, debug,
                                              iterations, repeats)
                     for strategy in STRATEGIES}
            rows.append({
                "workload": name,
                "debug": debug,
                "calls_per_sec": rates,
                "speedup_specialize": rates["specialize"] /
                rates["interpret"],
                "speedup_generated": rates["generated"] /
                rates["interpret"],
                "parity": True,
            })

    lines = [
        "Stub dispatch, calls/sec (best of "
        f"{repeats} x {iterations} calls; identical I/O traces "
        "verified first):",
        "",
        f"{'workload':<26} {'mode':<8} {'interpret':>11} "
        f"{'specialize':>11} {'generated':>11} {'spec/int':>9}",
    ]
    for row in rows:
        rates = row["calls_per_sec"]
        lines.append(
            f"{row['workload']:<26} "
            f"{'debug' if row['debug'] else 'release':<8} "
            f"{rates['interpret']:>11,.0f} "
            f"{rates['specialize']:>11,.0f} "
            f"{rates['generated']:>11,.0f} "
            f"{row['speedup_specialize']:>8.1f}x")
    report = {"quick": quick, "iterations": iterations,
              "repeats": repeats, "speedup_floor": SPEEDUP_FLOOR,
              "rows": rows}

    native_row = _native_batched_row(rows, iterations, repeats)
    if native_row is not None:
        report["native_batched"] = native_row
        lines += [
            "",
            f"native batched {NATIVE_FLOOR_WORKLOAD} (release): "
            f"{native_row['calls_per_sec']:,.0f} calls/s = "
            f"{native_row['speedup_vs_specialize']:.1f}x specialize "
            f"(floor {NATIVE_FLOOR}x)",
        ]
    else:
        lines += ["", "native batched: skipped (no C compiler)"]
    record("BENCH_stub_dispatch", "\n".join(lines), data=report)

    for row in rows:
        if row["workload"] in FLOOR_WORKLOADS and not row["debug"]:
            assert row["speedup_specialize"] >= SPEEDUP_FLOOR, \
                f"{row['workload']}: specialized only " \
                f"{row['speedup_specialize']:.2f}x interpreted " \
                f"(floor {SPEEDUP_FLOOR}x)"
    if native_row is not None:
        assert native_row["speedup_vs_specialize"] >= NATIVE_FLOOR, \
            f"{NATIVE_FLOOR_WORKLOAD}: batched native only " \
            f"{native_row['speedup_vs_specialize']:.2f}x the " \
            f"specializer (floor {NATIVE_FLOOR}x)"
    return report


def _native_batched_row(rows: list[dict], iterations: int,
                        repeats: int) -> dict | None:
    """Time one batched native ``repeat()`` leg against the release
    specializer rate already measured, or None without a compiler."""
    from repro.devil.native import native_available

    if not native_available():
        return None
    workload = next(w for w in WORKLOADS
                    if w[0] == NATIVE_FLOOR_WORKLOAD)
    _, machine, setup, _op = workload
    bus, bases = _machine(machine, tracing=False)
    device = _bind(machine, "native", bus, bases, debug=False)
    if setup is not None:
        setup(device)
    device.repeat("get_dx", 16)  # warm the direct-mode port table
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        device.repeat("get_dx", iterations)
        best = min(best, time.perf_counter() - start)
    rate = iterations / best
    specialize_rate = next(
        row["calls_per_sec"]["specialize"] for row in rows
        if row["workload"] == NATIVE_FLOOR_WORKLOAD
        and not row["debug"])
    return {"workload": NATIVE_FLOOR_WORKLOAD, "debug": False,
            "calls_per_sec": rate,
            "speedup_vs_specialize": rate / specialize_rate,
            "floor": NATIVE_FLOOR}


def test_stub_dispatch_quick():
    """Pytest entry point: the quick smoke run (parity + floor)."""
    run_bench(quick=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small iteration counts (CI smoke run)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="timed calls per measurement")
    parser.add_argument("--repeats", type=int, default=None,
                        help="measurement repeats (best is kept)")
    options = parser.parse_args(argv)
    run_bench(quick=options.quick, iterations=options.iterations,
              repeats=options.repeats)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
