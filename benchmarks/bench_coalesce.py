"""Shadow cache + transactional coalescing: port ops and wall clock.

The tentpole measurement for the register shadow cache and the
transactional write batching (``with dev.txn(): ...``): the paper's
micro-analysis (§4.3, Tables 2-4) charges Devil for re-reading
registers it already knows and for writing a shared register once per
independent variable.  The access-plan analysis (:mod:`repro.devil.plan`)
removes both — non-volatile reads are served from a shadow copy, and
deferred writes flush as one compose per register.

Two driver-shaped inner loops, straight from the paper's tables:

* ``ide/command_setup`` — program a READ_SECTORS command (device/head
  fields, sector count, LBA bytes) and re-check the addressing fields
  before issuing, Table 2's "+3 ops to prepare a command" pattern;
* ``permedia2/fill_rect`` — the Table 3 fill-rectangle loop: colour,
  rectangle origin/size (two packed registers), render trigger.

Each loop runs in three variants on a non-tracing bus:

* ``plain`` — no transaction, shadow cache off (the pre-optimisation
  execution shape; with the cache off the new code adds only a
  constant ``is None`` guard per access, so this is also the
  cache-off overhead probe);
* ``txn`` — writes batched in a transaction, shadow cache off;
* ``txn+shadow`` — transactions plus the shadow cache.

For every variant the simulated port-operation count per iteration is
measured from bus accounting under **all three** execution strategies
(they must agree exactly — the parity invariant), and wall-clock
iterations/sec are timed for the specialized and generated stubs.

The timed machines charge a busy-wait port latency per I/O operation
(``--latency-us``, default 3.0): a Python dict poke does not model an
ISA/PCI port access, which costs a microsecond or more on the paper's
hardware (bus cycles plus device wait states) and is precisely why
its tables count operations.
Without a latency model every saved ``outb`` saves ~0.3 us of
simulator time and the batching bookkeeping could never win; with it
the wall clock tracks the operation counts, as on hardware.

The acceptance floor: ``txn+shadow`` performs >= 30% fewer port
operations than ``plain`` on both workloads, and is faster under the
latency model.  Results land in ``results/BENCH_coalesce.{txt,json}``.

Runs standalone (``python benchmarks/bench_coalesce.py [--quick]``, the
CI smoke step) and under pytest via :func:`test_coalesce_quick`.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for _path in (_HERE, _HERE.parent / "src"):
    if str(_path) not in sys.path:
        sys.path.insert(0, str(_path))

from conftest import record

from repro.bus import Bus
from repro.devices.ide import REGION_SIZE as IDE_REGION
from repro.devices.ide import IdeControlPort, IdeDiskModel
from repro.devices.permedia2 import REGION_SIZE as PM2_REGION
from repro.devices.permedia2 import Permedia2Aperture, Permedia2Model
from repro.specs import compile_shipped

IDE_BASE = 0x1F0
IDE_CTRL = 0x3F6
PM2_REGS = 0xF000
PM2_FB = 0xF800

STRATEGIES = ("interpret", "specialize", "generated")
TIMED_STRATEGIES = ("specialize", "generated")
VARIANTS = ("plain", "txn", "txn+shadow")

#: Acceptance floor: the optimised variant must remove at least this
#: fraction of the plain variant's simulated port operations.
OPS_REDUCTION_FLOOR = 0.30

#: Busy-wait charged per port operation in the timed runs (ISA-class
#: port access cost; see the module docstring).
DEFAULT_LATENCY_US = 3.0


class _LatencyPort:
    """Wrap a simulated device so every port access busy-waits."""

    def __init__(self, inner, latency_s: float):
        self._inner = inner
        self._latency = latency_s

    def _spin(self) -> None:
        deadline = time.perf_counter() + self._latency
        while time.perf_counter() < deadline:
            pass

    def io_read(self, offset: int, width: int) -> int:
        self._spin()
        return self._inner.io_read(offset, width)

    def io_write(self, offset: int, value: int, width: int) -> None:
        self._spin()
        self._inner.io_write(offset, value, width)


# ---------------------------------------------------------------------------
# Driver-shaped inner loops
# ---------------------------------------------------------------------------


def _ide_setup_plain(device, sector):
    device.set_lba_mode(True)
    device.set_drive("MASTER")
    device.set_head((sector >> 24) & 0xF)
    device.set_sector_count(1)
    device.set_lba_low(sector & 0xFF)
    device.set_lba_mid((sector >> 8) & 0xFF)
    device.set_lba_high((sector >> 16) & 0xFF)
    # Driver-style sanity re-reads before issuing the command.
    assert device.get_lba_mode() is True
    assert device.get_drive() == "MASTER"
    device.get_sector_count()


def _ide_setup_txn(device, sector):
    with device.txn():
        device.set_lba_mode(True)
        device.set_drive("MASTER")
        device.set_head((sector >> 24) & 0xF)
        device.set_sector_count(1)
        device.set_lba_low(sector & 0xFF)
        device.set_lba_mid((sector >> 8) & 0xFF)
        device.set_lba_high((sector >> 16) & 0xFF)
    assert device.get_lba_mode() is True
    assert device.get_drive() == "MASTER"
    device.get_sector_count()


def _pm2_fill_plain(device, index):
    device.set_block_color(0x00FF00 ^ index)
    device.set_rect_x(index & 0x3F)
    device.set_rect_y((index >> 2) & 0x3F)
    device.set_rect_width(16)
    device.set_rect_height(8)
    device.set_render("FILL_RECT")


def _pm2_fill_txn(device, index):
    with device.txn():
        device.set_block_color(0x00FF00 ^ index)
        device.set_rect_x(index & 0x3F)
        device.set_rect_y((index >> 2) & 0x3F)
        device.set_rect_width(16)
        device.set_rect_height(8)
        device.set_render("FILL_RECT")


WORKLOADS = [
    ("ide/command_setup", "ide", _ide_setup_plain, _ide_setup_txn),
    ("permedia2/fill_rect", "permedia2", _pm2_fill_plain,
     _pm2_fill_txn),
]


# ---------------------------------------------------------------------------
# Machines and bindings
# ---------------------------------------------------------------------------


def _machine(name: str,
             latency_s: float = 0.0) -> tuple[Bus, dict[str, int]]:
    def port(device):
        return _LatencyPort(device, latency_s) if latency_s else device

    bus = Bus(tracing=False)
    if name == "ide":
        disk = IdeDiskModel(total_sectors=1 << 16)
        bus.map_device(IDE_BASE, IDE_REGION, port(disk), "ide")
        bus.map_device(IDE_CTRL, 1, port(IdeControlPort(disk)),
                       "ide-ctrl")
        return bus, {"cmd": IDE_BASE, "data": IDE_BASE,
                     "data32": IDE_BASE, "ctrl": IDE_CTRL}
    if name == "permedia2":
        gpu = Permedia2Model(width=64, height=48)
        bus.map_device(PM2_REGS, PM2_REGION, port(gpu), "permedia2")
        bus.map_device(PM2_FB, 1, port(Permedia2Aperture(gpu)),
                       "permedia2-fb")
        return bus, {"regs": PM2_REGS, "fb": PM2_FB}
    raise ValueError(f"no machine for {name!r}")


_GENERATED_CLASSES: dict[str, type] = {}


def _generated_class(name: str) -> type:
    cls = _GENERATED_CLASSES.get(name)
    if cls is None:
        namespace: dict = {}
        exec(compile(compile_shipped(name).emit_python(),
                     f"<gen:{name}>", "exec"), namespace)
        for value in namespace.values():
            if isinstance(value, type) and \
                    value.__name__.endswith("Stubs"):
                cls = value
        assert cls is not None, f"no stub class generated for {name}"
        _GENERATED_CLASSES[name] = cls
    return cls


def _bind(name: str, strategy: str, bus: Bus, bases: dict[str, int],
          shadow_cache: bool):
    spec = compile_shipped(name)
    if strategy == "generated":
        cls = _generated_class(name)
        return cls(bus, *[bases[param] for param in spec.model.params],
                   debug=False, shadow_cache=shadow_cache)
    return spec.bind(bus, bases, debug=False, strategy=strategy,
                     shadow_cache=shadow_cache)


def _variant_driver(workload, variant):
    _, _, plain, txn = workload
    return plain if variant == "plain" else txn


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def _ops_per_iteration(workload, variant: str, strategy: str,
                       iterations: int = 16) -> dict:
    name, machine, _, _ = workload
    drive = _variant_driver(workload, variant)
    bus, bases = _machine(machine)
    device = _bind(machine, strategy, bus, bases,
                   shadow_cache=(variant == "txn+shadow"))
    drive(device, 0)  # warm the shadow/register caches
    before = bus.accounting.snapshot()
    for index in range(1, iterations + 1):
        drive(device, index)
    delta = bus.accounting.delta(before)
    return {
        "ops": delta.total_ops / iterations,
        "reads": delta.reads / iterations,
        "writes": delta.writes / iterations,
        "elided": delta.elided_reads / iterations,
        "coalesced": delta.coalesced_writes / iterations,
    }


def _iters_per_sec(workload, variant: str, strategy: str,
                   iterations: int, repeats: int,
                   latency_s: float) -> float:
    _, machine, _, _ = workload
    drive = _variant_driver(workload, variant)
    bus, bases = _machine(machine, latency_s)
    device = _bind(machine, strategy, bus, bases,
                   shadow_cache=(variant == "txn+shadow"))
    drive(device, 0)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for index in range(iterations):
            drive(device, index)
        best = min(best, time.perf_counter() - start)
    return iterations / best


def run_bench(quick: bool = False, iterations: int | None = None,
              repeats: int | None = None,
              latency_us: float | None = None) -> dict:
    iterations = iterations or (500 if quick else 5000)
    repeats = repeats or (2 if quick else 5)
    if latency_us is None:
        latency_us = DEFAULT_LATENCY_US
    latency_s = latency_us * 1e-6

    rows = []
    for workload in WORKLOADS:
        name = workload[0]
        for variant in VARIANTS:
            profiles = {strategy: _ops_per_iteration(workload, variant,
                                                     strategy)
                        for strategy in STRATEGIES}
            reference = profiles["interpret"]
            for strategy, profile in profiles.items():
                assert profile == reference, \
                    f"{name}/{variant}: {strategy} performed " \
                    f"{profile} vs interpret {reference}"
            rates = {strategy: _iters_per_sec(workload, variant,
                                              strategy, iterations,
                                              repeats, latency_s)
                     for strategy in TIMED_STRATEGIES}
            rows.append({"workload": name, "variant": variant,
                         **reference, "iters_per_sec": rates})

    lines = [
        "Shadow cache + write coalescing: simulated port operations "
        "per iteration",
        f"and wall clock (best of {repeats} x {iterations} "
        f"iterations, release mode, {latency_us:g} us simulated "
        "latency per port op;",
        "per-variant counts verified identical across interpret/"
        "specialize/generated):",
        "",
        f"{'workload':<22} {'variant':<11} {'ops':>6} {'reads':>6} "
        f"{'writes':>7} {'elided':>7} {'merged':>7} "
        f"{'spec it/s':>10} {'gen it/s':>10}",
    ]
    by_key = {(row["workload"], row["variant"]): row for row in rows}
    for row in rows:
        rates = row["iters_per_sec"]
        lines.append(
            f"{row['workload']:<22} {row['variant']:<11} "
            f"{row['ops']:>6.1f} {row['reads']:>6.1f} "
            f"{row['writes']:>7.1f} {row['elided']:>7.1f} "
            f"{row['coalesced']:>7.1f} "
            f"{rates['specialize']:>10,.0f} "
            f"{rates['generated']:>10,.0f}")

    lines.append("")
    summary = []
    for workload in WORKLOADS:
        name = workload[0]
        plain = by_key[(name, "plain")]
        best = by_key[(name, "txn+shadow")]
        reduction = 1.0 - best["ops"] / plain["ops"]
        speedup = best["iters_per_sec"]["specialize"] / \
            plain["iters_per_sec"]["specialize"]
        summary.append({"workload": name,
                        "ops_plain": plain["ops"],
                        "ops_optimised": best["ops"],
                        "ops_reduction": reduction,
                        "wallclock_speedup_specialize": speedup})
        lines.append(
            f"{name}: {plain['ops']:.1f} -> {best['ops']:.1f} port "
            f"ops/iter ({reduction:.0%} fewer), "
            f"{speedup:.2f}x wall clock (specialized stubs)")
    lines.append(
        "cache off (the 'plain' rows) adds only a per-access is-None "
        "guard over the")
    lines.append(
        "pre-optimisation stubs; its port-operation counts are pinned "
        "by results/io_golden.json")

    report = {"quick": quick, "iterations": iterations,
              "repeats": repeats, "latency_us": latency_us,
              "ops_reduction_floor": OPS_REDUCTION_FLOOR,
              "rows": rows, "summary": summary}
    record("BENCH_coalesce", "\n".join(lines), data=report)

    for entry in summary:
        assert entry["ops_reduction"] >= OPS_REDUCTION_FLOOR, \
            f"{entry['workload']}: only {entry['ops_reduction']:.0%} " \
            f"fewer port ops (floor {OPS_REDUCTION_FLOOR:.0%})"
        if not quick:
            assert entry["wallclock_speedup_specialize"] > 1.0, \
                f"{entry['workload']}: optimised variant is slower " \
                f"({entry['wallclock_speedup_specialize']:.2f}x)"
    return report


def test_coalesce_quick():
    """Pytest entry point: the quick smoke run (parity + ops floor)."""
    run_bench(quick=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small iteration counts (CI smoke run)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="timed iterations per measurement")
    parser.add_argument("--repeats", type=int, default=None,
                        help="measurement repeats (best is kept)")
    parser.add_argument("--latency-us", type=float, default=None,
                        help="simulated per-port-op latency in "
                             f"microseconds (default "
                             f"{DEFAULT_LATENCY_US:g})")
    options = parser.parse_args(argv)
    run_bench(quick=options.quick, iterations=options.iterations,
              repeats=options.repeats, latency_us=options.latency_us)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
