"""Table 3: Permedia2 Xfree86 driver, fill-rectangle test.

Regenerates the xbench-style sweep: depths {8,16,24,32} bpp x rectangle
sizes {2,10,100,400}.  Expected shape (paper): the Devil driver costs
two extra MMIO stores per primitive, worth up to ~5% on 2x2 rectangles
and nothing from 100x100 up (99-100%).
"""

from conftest import record

from repro.perf import format_permedia_table, run_permedia_table


def test_table3_fill(benchmark):
    rows = benchmark.pedantic(
        lambda: run_permedia_table("fill", batch=64),
        rounds=1, iterations=1)
    record("table3_fill_rect", format_permedia_table(rows),
           data=[{"depth": row.depth, "size": row.size,
                  "standard_per_second": row.standard.per_second,
                  "devil_per_second": row.devil.per_second,
                  "ratio": row.ratio}
                 for row in rows])
    for row in rows:
        assert 0.93 <= row.ratio <= 1.01
        if row.size >= 100:
            assert row.ratio >= 0.99
