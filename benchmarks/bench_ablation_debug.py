"""Ablation: the cost of DEVIL_DEBUG run-time checks (§3.2).

The checks are CPU-side only — the I/O trace is identical — so the
measurable cost is per-call time.  The paper argues the checks are
cheap enough to leave on during development because the compiler
inserts and removes them systematically.
"""

from repro.bus import Bus
from repro.devices.busmouse import BusmouseModel
from repro.perf.micro import debug_mode_op_counts
from repro.specs import compile_shipped


def _mouse(debug):
    bus = Bus()
    mouse = BusmouseModel()
    bus.map_device(0x23C, 4, mouse, "busmouse")
    device = compile_shipped("busmouse").bind(bus, {"base": 0x23C},
                                              debug=debug)
    mouse.move(1, 1)
    device.get_mouse_state()
    return device


def test_debug_checks_do_not_change_io(benchmark):
    release, debug = benchmark.pedantic(debug_mode_op_counts, rounds=1,
                                        iterations=1)
    assert release == debug


def test_getter_release_mode(benchmark):
    device = _mouse(debug=False)
    benchmark(device.get_dx)


def test_getter_debug_mode(benchmark):
    device = _mouse(debug=True)
    benchmark(device.get_dx)
