#!/usr/bin/env python3
"""Cross-device session: ISA sound playback (CS4236B + 8237A DMA).

A classic ISA audio path touches two of the paper's chips at once: the
codec is programmed through its indexed registers while the 8237A DMA
controller streams the sample buffer from system memory.  Both sides
run through Devil stubs — including the 8237A's 16-bit address/count
registers, which the specification serializes through the flip-flop
pre-action (the paper's "Register serialization" example).

Run:  python3 examples/sound_playback.py
"""

import math

from repro.bus import Bus
from repro.devices.cs4236 import REGION_SIZE as CODEC_REGION
from repro.devices.cs4236 import Cs4236Model
from repro.devices.dma8237 import REGION_SIZE as DMA_REGION
from repro.devices.dma8237 import Dma8237Model
from repro.specs import compile_shipped

CODEC_BASE = 0x534
DMA_BASE = 0x00
DMA_CHANNEL = 1
BUFFER_ADDRESS = 0x4000


def sine_samples(count: int) -> bytes:
    """8-bit unsigned 440 Hz-ish sine, count samples."""
    return bytes(
        int(127.5 + 127.5 * math.sin(2 * math.pi * index / 32)) & 0xFF
        for index in range(count))


def main() -> None:
    bus = Bus()
    codec = Cs4236Model()
    dma = Dma8237Model()
    bus.map_device(CODEC_BASE, CODEC_REGION, codec, "cs4236")
    bus.map_device(DMA_BASE, DMA_REGION, dma, "dma8237")
    mixer = compile_shipped("cs4236").bind(bus, {"base": CODEC_BASE})
    dma_dev = compile_shipped("dma8237").bind(bus, {"base": DMA_BASE})

    print("programming the codec (unmute, set output level)...")
    mixer.set_left_dac_output(left_dac_attenuation=4, left_dac_mute=False,
                              left_dac_pad=False)
    mixer.set_left_adc_input(left_input_gain=0, left_mic_boost=False,
                             left_input_source="LINE",
                             left_input_pad=False)
    print(f"  I6 = {codec.indexed[6]:#04x}")

    samples = sine_samples(256)
    memory = bytearray(1 << 16)
    memory[BUFFER_ADDRESS:BUFFER_ADDRESS + len(samples)] = samples

    print("\nprogramming the 8237A playback channel...")
    dma_dev.set_master_clear(0)
    dma_dev.set_channel_mode(
        mode_channel=DMA_CHANNEL, mode_transfer="READ_MEM",
        mode_autoinit=True, mode_down=False, mode_kind="SINGLE")
    before = bus.accounting.snapshot()
    dma_dev.set_address1(BUFFER_ADDRESS)
    dma_dev.set_count1(len(samples) - 1)
    delta = bus.accounting.delta(before)
    print(f"  16-bit address+count programmed through 8-bit ports in "
          f"{delta.total_ops} I/O ops (incl. flip-flop resets)")
    dma_dev.set_channel_mask(mask_channel=DMA_CHANNEL, mask_set="MASK_OFF")

    print("\nstreaming two periods (autoinit reloads the channel)...")
    for period in range(2):
        streamed = dma.run_channel(DMA_CHANNEL, memory)
        assert streamed == samples
        status = dma_dev.get_status()
        print(f"  period {period}: {len(streamed)} bytes, "
              f"TC bits {status['reached_tc']:#03b}")

    print(f"\nreadback: address register = "
          f"{dma_dev.get_address1():#06x} (autoinit restored), "
          f"count = {dma_dev.get_count1()}")
    print(f"total bus operations: {bus.accounting.total_ops}")


if __name__ == "__main__":
    main()
