#!/usr/bin/env python3
"""A miniature accelerated X server on the Permedia2.

Renders a desktop-like scene — wallpaper, three windows with title
bars, a drop shadow moved by screen-copy — through the Devil-based
driver, then dumps the framebuffer as ASCII art and prints the xbench
accounting behind Tables 3 and 4.

Run:  python3 examples/xserver_rects.py
"""

from repro.bus import Bus
from repro.devices.permedia2 import (
    REGION_SIZE,
    Permedia2Aperture,
    Permedia2Model,
)
from repro.drivers import DevilPermedia2Driver

REGS, FB = 0xF0000000, 0xF1000000
WIDTH, HEIGHT = 72, 24

WALLPAPER, SHADOW, BODY, TITLE, ACCENT = 1, 2, 3, 4, 5
GLYPHS = {0: " ", WALLPAPER: ".", SHADOW: "#", BODY: " ",
          TITLE: "=", ACCENT: "o"}


def draw_window(driver, x, y, w, h):
    driver.fill_rect(x + 2, y + 1, w, h, SHADOW)       # drop shadow
    driver.fill_rect(x, y, w, h, BODY)                 # body
    driver.fill_rect(x, y, w, 2, TITLE)                # title bar
    driver.fill_rect(x + w - 3, y, 2, 2, ACCENT)       # close button


def main() -> None:
    bus = Bus()
    gpu = Permedia2Model(width=WIDTH, height=HEIGHT)
    bus.map_device(REGS, REGION_SIZE, gpu, "permedia2")
    bus.map_device(FB, 1, Permedia2Aperture(gpu), "permedia2-fb")
    driver = DevilPermedia2Driver(bus, REGS, FB)
    driver.set_mode(8, WIDTH, HEIGHT)

    driver.fill_rect(0, 0, WIDTH, HEIGHT, WALLPAPER)
    draw_window(driver, 3, 2, 26, 12)
    draw_window(driver, 36, 5, 30, 14)
    # Drag the small window 6 cells right using the copy engine.
    driver.screen_copy(3, 2, 9, 8, 28, 13)
    draw_window(driver, 12, 16, 18, 6)

    print("framebuffer:")
    for row in gpu.framebuffer:
        print("  " + "".join(GLYPHS.get(int(cell), "?") for cell in row))

    print(f"\nprimitives: {gpu.primitives}  "
          f"pixels filled: {gpu.pixels_filled}  "
          f"pixels copied: {gpu.pixels_copied}")
    print(f"MMIO: {bus.accounting.writes} stores, "
          f"{bus.accounting.reads} FIFO polls "
          f"(#w loops: {driver.wait_iterations})")


if __name__ == "__main__":
    main()
