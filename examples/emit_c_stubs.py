#!/usr/bin/env python3
"""Generate the C stub headers for the whole specification library.

Writes one ``<device>.dil.h`` per shipped specification into
``generated_c/`` — the artifact a kernel driver would include — and,
when a C compiler is available, compile-checks every header with
``-Wall -Wextra -Werror``.

Run:  python3 examples/emit_c_stubs.py [output_dir]
"""

import shutil
import subprocess
import sys
from pathlib import Path

from repro.specs import SPEC_NAMES, compile_shipped

HARNESS = """\
unsigned devil_in(unsigned port, int width);
void devil_out(unsigned value, unsigned port, int width);
void devil_in_rep(unsigned port, int width, unsigned long count,
                  unsigned *buffer);
void devil_out_rep(unsigned port, int width, unsigned long count,
                   const unsigned *buffer);
#define DEVIL_IO_DECLARED
#define DEVIL_DEBUG
#include "{name}.dil.h"
int main(void) {{ {prefix}_state_t state; (void)state; return 0; }}
"""


def main() -> None:
    output = Path(sys.argv[1] if len(sys.argv) > 1 else "generated_c")
    output.mkdir(exist_ok=True)
    gcc = shutil.which("gcc")

    for name in SPEC_NAMES:
        spec = compile_shipped(name)
        prefix = name[:3]
        header = spec.emit_c(prefix=prefix)
        path = output / f"{name}.dil.h"
        path.write_text(header)
        line = f"{path}  ({len(header.splitlines())} lines"
        if gcc:
            test_c = output / f"__check_{name}.c"
            test_c.write_text(HARNESS.format(name=name, prefix=prefix))
            result = subprocess.run(
                [gcc, "-Wall", "-Wextra", "-Werror", "-std=c99", "-c",
                 str(test_c), "-o", str(output / f"__check_{name}.o")],
                capture_output=True, text=True)
            line += ", gcc: OK" if result.returncode == 0 else \
                f", gcc: FAILED\n{result.stderr}"
            test_c.unlink()
            (output / f"__check_{name}.o").unlink(missing_ok=True)
        print(line + ")")

    if not gcc:
        print("\n(gcc not found — headers written but not "
              "compile-checked)")


if __name__ == "__main__":
    main()
