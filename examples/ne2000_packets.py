#!/usr/bin/env python3
"""NE2000 session: bring up the NIC and exchange Ethernet frames.

The Devil-based driver initialises the simulated DP8390 (page-selected
register file, receive ring, remote DMA window), transmits a frame,
and drains frames "from the wire".  Every page switch, trigger
composition and 16-bit counter split happens inside the generated
stubs.

Run:  python3 examples/ne2000_packets.py
"""

from repro.bus import Bus
from repro.devices.ne2000 import (
    REGION_SIZE,
    Ne2000DataPort,
    Ne2000Model,
    Ne2000ResetPort,
)
from repro.drivers import DevilNe2000Driver

BASE, DATA, RESET = 0x300, 0x310, 0x31F
MAC = bytes((0x02, 0x00, 0x4C, 0x4F, 0x4F, 0x50))


def frame(dst: bytes, src: bytes, ethertype: int, payload: bytes) -> bytes:
    header = dst + src + ethertype.to_bytes(2, "big")
    body = payload.ljust(46, b"\x00")
    return header + body


def main() -> None:
    bus = Bus()
    nic = Ne2000Model()
    bus.map_device(BASE, REGION_SIZE, nic, "ne2000")
    bus.map_device(DATA, 2, Ne2000DataPort(nic), "ne2000-data")
    bus.map_device(RESET, 1, Ne2000ResetPort(nic), "ne2000-reset")

    driver = DevilNe2000Driver(bus, BASE, DATA, RESET)
    driver.reset()
    driver.init(MAC)
    print(f"NIC up, MAC {driver.read_mac().hex(':')}")

    broadcast = b"\xFF" * 6
    outgoing = frame(broadcast, MAC, 0x0806, b"who-has 10.0.0.1?")
    driver.send_frame(outgoing)
    print(f"transmitted {len(nic.transmitted[0])}-byte ARP frame")

    print("\ntwo frames arrive from the wire...")
    peer = bytes((0x02, 0x00, 0x4C, 0x00, 0x00, 0x02))
    nic.receive_frame(frame(MAC, peer, 0x0806, b"10.0.0.1 is-at peer"))
    nic.receive_frame(frame(MAC, peer, 0x0800, b"ping!" * 40))

    for received in driver.poll_receive():
        ethertype = int.from_bytes(received[12:14], "big")
        print(f"  received {len(received)} bytes, ethertype "
              f"{ethertype:#06x}, payload starts "
              f"{received[14:28]!r}")

    driver.ack_interrupts()
    print(f"\ntotal I/O: {bus.accounting.total_ops} explicit ops, "
          f"{bus.accounting.block_words} words by remote DMA")


if __name__ == "__main__":
    main()
