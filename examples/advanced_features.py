#!/usr/bin/env python3
"""The features the paper names but never shows: modes, arrays,
transactions, datasheets.

* **Device modes** (§2.2 "conditional declarations"): the 8259A's ICW
  and OCW registers share ports but live in different operating modes;
  the checker types this, and debug builds reject out-of-mode access.
* **Register arrays** (§2.2 "arrays"): a constructor whose port offset
  depends on its parameter describes a register bank.
* **Transactions** (§6 "factorizing device communications"): writes to
  variables of one register coalesce into a single I/O operation.
* **Datasheets** (§4.1 "documentation purposes"): the spec renders as
  a Markdown register map.

Run:  python3 examples/advanced_features.py
"""

from repro.bus import Bus
from repro.devices.pic8259 import Pic8259Model
from repro.devil.compiler import compile_spec
from repro.devil.errors import DevilRuntimeError
from repro.specs import compile_shipped

BANK = """
device sensor_bank (base : bit[8] port @ {0..4})
{
    register ctrl = write base @ 0 : bit[8];
    private variable powered = ctrl[0] : int(1);
    variable gain = ctrl[4..1] : int(4);
    variable pad = ctrl[7..5] : int(3);

    // Four identical sensor channels at consecutive offsets.
    register channel(i : int{0..3}) = base @ 1 + i,
        pre {powered = 1} : bit[8];
    register ch0 = channel(0);
    register ch1 = channel(1);
    register ch2 = channel(2);
    register ch3 = channel(3);
    variable s0 = ch0, volatile : int(8);
    variable s1 = ch1, volatile : int(8);
    variable s2 = ch2, volatile : int(8);
    variable s3 = ch3, volatile : int(8);
}
"""


class SensorBank:
    def __init__(self):
        self.ctrl = 0
        self.samples = [11, 22, 33, 44]

    def io_read(self, offset, width):
        return self.samples[offset - 1]

    def io_write(self, offset, value, width):
        self.ctrl = value


def demo_modes() -> None:
    print("== device modes (8259A) ==")
    bus = Bus()
    pic = Pic8259Model()
    bus.map_device(0x20, 2, pic, "pic")
    device = compile_shipped("pic8259").bind(bus, {"base": 0x20})
    print(f"reset mode: {device.get_device_mode()}")
    try:
        device.set_irq_mask(0)
    except DevilRuntimeError as error:
        print(f"OCW1 before init rejected: {error.message[:60]}...")
    device.set_init(addr_vector=0, ltim="EDGE", adi="INTERVAL8",
                    sngl="SINGLE", ic4=True, vector_base=0x40, slaves=0,
                    sfnm=False, buffered=False, master="BUF_SLAVE",
                    aeoi=False, microprocessor="X8086")
    device.set_device_mode("operation")
    device.set_irq_mask(0x00)
    print(f"init words observed by the chip: {pic.init_log[0]}")
    print(f"mask after switching to operation: {device.get_irq_mask()}")


def demo_arrays_and_transactions() -> None:
    print("\n== register arrays + transactions ==")
    spec = compile_spec(BANK)
    bus = Bus()
    bank = SensorBank()
    bus.map_device(0x40, 5, bank, "sensors")
    device = spec.bind(bus, {"base": 0x40})

    readings = [device.get(f"s{i}") for i in range(4)]
    print(f"bank readings via the channel(i) array: {readings}")

    before = bus.accounting.total_ops
    device.set_gain(7)
    device.set_pad(0)
    unbatched = bus.accounting.total_ops - before
    before = bus.accounting.total_ops
    with device.transaction():
        device.set_gain(9)
        device.set_pad(0)
    batched = bus.accounting.total_ops - before
    print(f"two ctrl-field writes: {unbatched} ops plain, "
          f"{batched} op in a transaction (ctrl={bank.ctrl:#04x})")


def demo_datasheet() -> None:
    print("\n== generated datasheet (excerpt) ==")
    doc = compile_spec(BANK).emit_doc()
    for line in doc.splitlines():
        if line.startswith(("| `ch", "| `ctrl", "## Register")):
            print(f"  {line}")


if __name__ == "__main__":
    demo_modes()
    demo_arrays_and_transactions()
    demo_datasheet()
