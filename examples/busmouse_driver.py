#!/usr/bin/env python3
"""Figure 2 vs Figure 3: the same mouse driver, twice.

Drives the simulated Logitech busmouse through the hand-written
C-style driver (raw ports, hex masks — Figure 2 of the paper) and
through the Devil-based driver (generated stubs — Figure 3), shows
that they produce identical events from identical hardware, and prints
the I/O traces side by side.

Run:  python3 examples/busmouse_driver.py
"""

from repro.bus import Bus
from repro.devices.busmouse import REGION_SIZE, BusmouseModel
from repro.drivers import CStyleBusmouseDriver, DevilBusmouseDriver

BASE = 0x23C

EVENTS = [(5, -3, 0b100), (-7, 2, 0b000), (120, -120, 0b111),
          (0, 1, 0b010)]


def run(driver_cls, label):
    bus = Bus(tracing=True)
    mouse = BusmouseModel()
    bus.map_device(BASE, REGION_SIZE, mouse, "busmouse")
    driver = driver_cls(bus, BASE)

    assert driver.probe(), "mouse not detected"
    driver.enable_interrupts()

    events = []
    for dx, dy, buttons in EVENTS:
        mouse.move(dx, dy)
        mouse.set_buttons(buttons)
        events.append(driver.read_event())

    print(f"{label}:")
    print(f"  events: {events}")
    print(f"  I/O operations: {bus.accounting.total_ops}")
    return events, bus.trace


def main() -> None:
    c_events, c_trace = run(CStyleBusmouseDriver,
                            "hand-written driver (Figure 2)")
    devil_events, devil_trace = run(DevilBusmouseDriver,
                                    "Devil-based driver (Figure 3)")

    assert c_events == devil_events == EVENTS
    print("\nBoth drivers decoded the same events from the same "
          "hardware.")

    print("\nFirst event's I/O trace (op port value):")
    print(f"  {'hand-written':<22} {'Devil stubs':<22}")
    for c_entry, d_entry in zip(c_trace[4:13], devil_trace[4:13]):
        c_text = f"{c_entry.op} {c_entry.port:#x} {c_entry.value:#04x}"
        d_text = f"{d_entry.op} {d_entry.port:#x} {d_entry.value:#04x}"
        print(f"  {c_text:<22} {d_text:<22}")

    c_ops = sorted((c.op, c.port, c.value) for c in c_trace)
    d_ops = sorted((d.op, d.port, d.value) for d in devil_trace)
    print(f"\nsame operations, same counts: {c_ops == d_ops}")
    print("(the Devil structure reads x_high before x_low — the order "
          "Figure 3c generates —\n while the Linux driver reads x_low "
          "first; the nibble protocol permits both)")


if __name__ == "__main__":
    main()
