#!/usr/bin/env python3
"""Quickstart: specify a device in Devil, verify it, drive it.

This walks the paper's whole pipeline in one file:

1. write a Devil specification (a little status/control chip),
2. compile it — the checker verifies the §3.1 consistency rules,
3. bind executable stubs to a simulated device on the bus,
4. operate the device through typed, named accessors,
5. emit the C header a kernel driver would include (Figure 3c),
6. watch the checker reject a broken specification.

Run:  python3 examples/quickstart.py
"""

from repro.bus import Bus
from repro.devil.compiler import compile_spec
from repro.devil.errors import DevilCheckError

SPEC = """
// A small status/control chip: one control register shared by three
// typed variables, one read-only status register.
device demo_chip (base : bit[8] port @ {0..1})
{
    register control = write base @ 0, mask '1..0....' : bit[8];
    variable power = control[6..5] :
        { OFF => '00', STANDBY => '01', ON => '10' };
    variable gain = control[3..0] : int(4);

    register status = read base @ 1 : bit[8];
    variable ready = status[7], volatile : bool;
    variable temperature = status[6..0], volatile : int(7);
}
"""


class DemoChip:
    """Behavioural model of the imaginary chip."""

    def __init__(self):
        self.control = 0
        self.temperature = 42

    def io_read(self, offset, width):
        if offset == 1:
            ready = 0x80 if self.control & 0b0100_0000 else 0
            return ready | self.temperature
        raise RuntimeError("control register is write-only")

    def io_write(self, offset, value, width):
        assert offset == 0
        self.control = value


def main() -> None:
    print("1. Compiling the specification...")
    spec = compile_spec(SPEC, filename="demo_chip.devil")
    print(f"   device {spec.name!r}: "
          f"{len(spec.model.registers)} registers, "
          f"{len(spec.model.variables)} variables")

    print("2. Binding stubs to a simulated bus...")
    bus = Bus()
    chip = DemoChip()
    bus.map_device(0x200, 2, chip, "demo")
    device = spec.bind(bus, {"base": 0x200}, debug=True)

    print("3. Operating the device through the generated interface...")
    device.set_power("ON")            # enum symbol, not a magic number
    device.set_gain(7)                # range-checked int(4)
    print(f"   control register is now {chip.control:#04x} "
          f"(bit 7 forced to 1 by the mask)")
    print(f"   ready = {device.get_ready()}")
    print(f"   temperature = {device.get_temperature()}")
    print(f"   bus operations so far: {bus.accounting.total_ops}")

    print("4. Debug-mode checks (§3.2) catch bad values:")
    try:
        device.set_gain(99)
    except Exception as error:
        print(f"   set_gain(99) -> {error}")

    print("5. Emitting the C stub header (first lines):")
    header = spec.emit_c(prefix="demo")
    for line in header.splitlines()[:6]:
        print(f"   {line}")
    print("   ...")

    print("6. The checker rejects inconsistent specifications:")
    broken = SPEC.replace("variable gain = control[3..0]",
                          "variable gain = control[4..0]")
    try:
        compile_spec(broken)
    except DevilCheckError as error:
        first = str(error).splitlines()[1]
        print(f"   {first}")

    print("\nDone.")


if __name__ == "__main__":
    main()
