#!/usr/bin/env python3
"""Driving the CS4236B — the paper's most contorted chip.

The Crystal CS4236B hides 18 extended registers behind a two-level
indexing automaton: indexed register I23 becomes an extended *data*
register after its XRAE bit is written true, and only a write to the
control register turns it back into an address register.  The Devil
specification captures this with a private memory variable (``xm``),
``set`` actions and a ``write trigger for true`` qualifier — and the
driver below never has to know.

Run:  python3 examples/sound_mixer.py
"""

from repro.bus import Bus
from repro.devices.cs4236 import REGION_SIZE, Cs4236Model
from repro.specs import compile_shipped

BASE = 0x534


def main() -> None:
    bus = Bus(tracing=True)
    chip = Cs4236Model()
    bus.map_device(BASE, REGION_SIZE, chip, "cs4236")
    mixer = compile_shipped("cs4236").bind(bus, {"base": BASE})

    print(f"codec id: {mixer.get_chip_id():#x}, "
          f"mode2: {mixer.get_mode2()}")

    print("\nprogramming the analog front end (plain indexed regs)...")
    mixer.set_left_adc_input(left_input_gain=10, left_mic_boost=True,
                             left_input_source="MIC", left_input_pad=False)
    mixer.set_left_dac_output(left_dac_attenuation=6, left_dac_mute=False,
                              left_dac_pad=False)
    print(f"  I0 = {chip.indexed[0]:#04x}, I6 = {chip.indexed[6]:#04x}")

    print("\nreading the version through the extended-register "
          "automaton...")
    trace_start = len(bus.trace)
    version = mixer.get_version()
    print(f"  X25 = {version:#04x}")
    print("  bus trace of that one get_version() call:")
    for entry in bus.trace[trace_start:]:
        meaning = {0: "index/control", 1: "data"}[entry.port - BASE]
        print(f"    {entry.op} {meaning:<13} {entry.value:#04x}")

    print("\nmic volume through an extended register...")
    mixer.set_mic_left_volume(19)
    print(f"  X2 = {chip.extended[2]:#04x}")

    print("\nwriting ACF must NOT trip the automaton "
          "(XRAE composes to its neutral false):")
    mixer.set_ACF(True)
    print(f"  I23 = {chip.indexed[23]:#04x}, "
          f"extended mode: {chip.extended_mode}")

    assert not chip.extended_mode
    assert mixer.get_version() == version
    print("\nautomaton state consistent — the spec's xm variable and "
          "the silicon agree.")


if __name__ == "__main__":
    main()
