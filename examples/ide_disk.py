#!/usr/bin/env python3
"""IDE disk session: PIO and busmaster DMA through Devil stubs.

Builds the simulated PC disk subsystem (IDE disk + PIIX4 busmaster),
writes and reads back a small filesystem-like pattern through the
Devil-based driver, and prints the I/O-operation accounting that
underlies Table 2 of the paper — including the block-stub vs C-loop
difference.

Run:  python3 examples/ide_disk.py
"""

from repro.bus import Bus
from repro.devices.ide import REGION_SIZE, IdeControlPort, IdeDiskModel
from repro.devices.piix4 import Piix4Model
from repro.drivers import DevilIdeDriver

CMD_BASE, CTRL_BASE, BM_BASE = 0x1F0, 0x3F6, 0xC000


def main() -> None:
    bus = Bus()
    disk = IdeDiskModel(total_sectors=256)
    bus.map_device(CMD_BASE, REGION_SIZE, disk, "ide")
    bus.map_device(CTRL_BASE, 1, IdeControlPort(disk), "ide-ctrl")
    memory = bytearray(1 << 18)
    busmaster = Piix4Model(disk, memory)
    bus.map_device(BM_BASE, 8, busmaster, "piix4")

    driver = DevilIdeDriver(bus, CMD_BASE, CTRL_BASE, BM_BASE)

    print("IDENTIFY DEVICE:")
    identify = driver.identify()
    model_name = bytes(
        identify[54 + (i ^ 1)] for i in range(40)).decode().strip()
    sectors = int.from_bytes(identify[120:124], "little")
    print(f"  model: {model_name!r}, capacity: {sectors} sectors")

    print("\nWriting a tagged pattern with multi-sector PIO...")
    payload = b"".join(
        f"sector-{index:04d}".encode().ljust(512, b".")
        for index in range(32))
    driver.set_multiple(8)
    before = bus.accounting.snapshot()
    driver.write_sectors(100, payload, sectors_per_irq=8)
    delta = bus.accounting.delta(before)
    print(f"  32 sectors written: {delta.total_ops} explicit I/O ops, "
          f"{delta.block_words} words via rep, "
          f"{disk.interrupts_raised} interrupts so far")

    print("\nReading back via DMA...")
    before = bus.accounting.snapshot()
    data = driver.read_dma(memory, 100, 32, buffer_address=0x10000)
    delta = bus.accounting.delta(before)
    assert data == payload
    print(f"  32 sectors read: {delta.total_ops} I/O ops "
          f"(the busmaster moved {busmaster.bytes_transferred} bytes)")

    print("\nSingle-word loop vs block stubs (one sector):")
    for use_block in (False, True):
        before = bus.accounting.snapshot()
        driver.read_sectors(100, 1, use_block=use_block)
        delta = bus.accounting.delta(before)
        kind = "block stubs" if use_block else "C loop     "
        print(f"  {kind}: {delta.total_ops:>4} explicit ops, "
              f"{delta.bus_transactions:>4} bus transactions")

    print("\nVerifying content round-trip...")
    echoed = driver.read_sectors(100, 32, sectors_per_irq=8)
    assert echoed == payload
    print("  OK — every sector intact.")


if __name__ == "__main__":
    main()
