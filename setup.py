"""Setup shim: enables `pip install -e . --no-use-pep517` in offline
environments that lack the `wheel` package (PEP 517 editable installs
need bdist_wheel).  All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
