"""Native fleet substrate tests: build-cache races, the direct-mode
gate, and the C-resident device models.

Three claims with teeth:

* **One compile per spec variant, ever** — N workers (threads of one
  process, or separate processes) cold-binding the same spec against
  an empty cache produce exactly one compiler invocation and an
  uncorrupted library (the ``flock`` + second-check + atomic-publish
  discipline in :mod:`repro.devil.native.build`).
* **The direct-mode gate is exact** — batches leave the Python bus
  only when no observer needs per-access hooks: plain ``Bus`` always
  qualifies, the zero-latency fleet ``ThreadSafeBus`` only when every
  owned mapping has a C-resident model, and tracing, collectors and
  latency-model subclasses always force callback mode.
* **The C device models are indistinguishable** — end state,
  accounting shards and device error messages byte-match the Python
  models they mirror.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.bus import Bus, BusError, ThreadSafeBus
from repro.devil.native import (
    MODELS_ENV,
    bind_native,
    models_enabled,
    native_available,
)
from repro.devil.native import build as native_build
from repro.engine import SLOT_STRIDE, Fleet, map_fleet_device
from repro.obs.workloads import WORKLOADS, bind_stubs, build_machine
from tests.conftest import shipped_spec


def _bind_native(spec: str, bus, bases, **kwargs):
    return bind_native(shipped_spec(spec).model, bus, bases,
                       debug=False, **kwargs)

pytestmark = pytest.mark.concurrency

needs_cc = pytest.mark.skipif(not native_available(),
                              reason="strategy='native' needs a C "
                                     "compiler")


# ---------------------------------------------------------------------------
# Build-cache races: exactly one compile, no corruption
# ---------------------------------------------------------------------------


@needs_cc
def test_eight_concurrent_cold_binds_compile_once(tmp_path,
                                                  monkeypatch):
    """Eight threads hammering an empty cache produce one compile.

    Every bind must also come back *usable* — each thread runs the
    shipped workload on its own machine and the end states agree, so a
    torn or partially-published library cannot hide behind the count.
    """
    monkeypatch.setenv(native_build.CACHE_ENV, str(tmp_path))
    before = native_build.BUILD_COUNT
    barrier = threading.Barrier(8)
    results: list = [None] * 8
    errors: list = []

    def cold_bind(index: int) -> None:
        try:
            bus, aux, bases = build_machine("busmouse", tracing=False)
            barrier.wait()
            stubs = bind_stubs("busmouse", "native", bus, bases,
                               debug=False)
            results[index] = (WORKLOADS["busmouse"](stubs, aux),
                              bus.accounting.snapshot())
        except BaseException as exc:    # pragma: no cover - diagnostics
            errors.append(exc)

    threads = [threading.Thread(target=cold_bind, args=(i,))
               for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert native_build.BUILD_COUNT == before + 1
    assert all(result == results[0] for result in results)


_CHILD_BIND = """\
import os, sys, time
sys.path.insert(0, {src!r})
from repro.obs.workloads import WORKLOADS, bind_stubs, build_machine
go = {go!r}
deadline = time.monotonic() + 30
while not os.path.exists(go):
    if time.monotonic() > deadline:
        raise SystemExit("barrier file never appeared")
    time.sleep(0.005)
bus, aux, bases = build_machine("busmouse", tracing=False)
stubs = bind_stubs("busmouse", "native", bus, bases, debug=False)
WORKLOADS["busmouse"](stubs, aux)
print("BOUND")
"""


@needs_cc
def test_cross_process_cold_binds_compile_once(tmp_path):
    """Four *processes* racing an empty cache still compile once.

    flock is what serializes across processes (the in-process lock
    cannot), so this is the test that actually exercises it.  The
    compiler is wrapped in a logging shim; compile invocations are the
    logged lines carrying ``-shared``.
    """
    log = tmp_path / "cc.log"
    real_cc = native_build.find_compiler()
    wrapper = tmp_path / "cc-logged"
    wrapper.write_text(
        f"#!/bin/sh\necho \"$@\" >> {log}\nexec {real_cc} \"$@\"\n")
    wrapper.chmod(0o755)

    src = str(Path(__file__).resolve().parent.parent / "src")
    go = tmp_path / "go"
    env = dict(os.environ,
               CC=str(wrapper),
               **{native_build.CACHE_ENV: str(tmp_path / "cache")})
    script = _CHILD_BIND.format(src=src, go=str(go))
    children = [subprocess.Popen([sys.executable, "-c", script],
                                 env=env, stdout=subprocess.PIPE,
                                 stderr=subprocess.PIPE, text=True)
                for _ in range(4)]
    go.write_text("go")
    for child in children:
        out, err = child.communicate(timeout=120)
        assert child.returncode == 0, err
        assert "BOUND" in out
    compiles = [line for line in log.read_text().splitlines()
                if "-shared" in line]
    assert len(compiles) == 1, compiles


# ---------------------------------------------------------------------------
# The direct-mode gate
# ---------------------------------------------------------------------------


def _tsb_machine(spec: str, bus):
    aux, bases = map_fleet_device(bus, spec, SLOT_STRIDE, f"{spec}0")
    return aux, bases


@needs_cc
def test_direct_mode_gate_decisions():
    """The gate's whole truth table, against the real bus classes."""
    from repro.engine.fleet import LatencyBus

    # Plain Bus, untraced: always direct — even without C models.
    bus, aux, bases = build_machine("busmouse", tracing=False)
    stubs = bind_stubs("busmouse", "native", bus, bases, debug=False)
    core = stubs._native
    assert core.enter_direct() is True
    core.leave_direct()

    # Tracing bus: never direct (per-access hooks are the point).
    traced, aux, bases = build_machine("busmouse", tracing=True)
    stubs = bind_stubs("busmouse", "native", traced, bases, debug=False)
    assert stubs._native.enter_direct() is False

    # Zero-latency fleet bus + fully modelled device: direct.
    tsb = ThreadSafeBus()
    aux, bases = _tsb_machine("ide", tsb)
    stubs = _bind_native("ide", tsb, bases)
    core = stubs._native
    assert core.enter_direct() is True
    core.leave_direct()

    # Same bus, device without a C model: callback mode.
    tsb = ThreadSafeBus()
    aux, bases = _tsb_machine("busmouse", tsb)
    stubs = _bind_native("busmouse", tsb, bases)
    assert stubs._native.enter_direct() is False

    # Models disabled at bind time: even IDE stays in callback mode
    # on the fleet bus (and still runs exactly, elsewhere verified).
    tsb = ThreadSafeBus()
    aux, bases = _tsb_machine("ide", tsb)
    stubs = _bind_native("ide", tsb, bases, with_models=False)
    assert stubs._native.enter_direct() is False

    # The latency-modelling subclass never qualifies: its per-access
    # sleep hooks are semantics, not observation.
    latency = LatencyBus(op_latency_us=1.0)
    aux, bases = _tsb_machine("ide", latency)
    stubs = _bind_native("ide", latency, bases)
    assert stubs._native.enter_direct() is False


@needs_cc
def test_models_env_gate(monkeypatch):
    assert isinstance(models_enabled(), bool)
    monkeypatch.setenv(MODELS_ENV, "0")
    assert models_enabled() is False
    monkeypatch.setenv(MODELS_ENV, "1")
    assert models_enabled() is True


# ---------------------------------------------------------------------------
# C-resident models: exactness on the fleet bus
# ---------------------------------------------------------------------------


@needs_cc
@pytest.mark.parametrize("spec", ("ide", "permedia2"))
def test_c_models_match_python_models_on_fleet_bus(spec):
    """Hot-register devices driven through the C models land the same
    end state, merged accounting and per-device shards as the
    specializer on an identical ThreadSafeBus."""
    evidence = {}
    for strategy in ("specialize", "native"):
        bus = ThreadSafeBus()
        aux, bases = _tsb_machine(spec, bus)
        stubs = bind_stubs(spec, strategy, bus, bases, debug=False)
        results = WORKLOADS[spec](stubs, aux)
        evidence[strategy] = (results,
                              bus.state_snapshot(),
                              bus.accounting.snapshot(),
                              bus.accounting_by_device())
    assert evidence["native"] == evidence["specialize"]


@needs_cc
def test_c_model_error_messages_match_python(tmp_path):
    """A device fault raised from C carries the same message as the
    Python model raises: diagnostics are part of the contract."""
    messages = {}
    for strategy in ("specialize", "native"):
        bus = ThreadSafeBus()
        aux, bases = _tsb_machine("ide", bus)
        stubs = bind_stubs("ide", strategy, bus, bases, debug=False)
        with pytest.raises(BusError) as info:
            stubs.read_ide_data_block(8)
        messages[strategy] = str(info.value)
    assert messages["native"] == messages["specialize"]


@needs_cc
def test_native_thread_fleet_overlaps_cpu_bound_requests():
    """Smoke the tentpole claim at test scale: a 2-worker native
    thread fleet executes dispatch-bound requests without error and
    exactly (full-scale speedup lives in bench_fleet_native.py)."""
    from repro.engine import ide_taskfile_churn

    import functools
    request = functools.partial(ide_taskfile_churn, n=2048)
    with Fleet(["ide", "ide"], workers=2, strategy="native",
               tracing=False) as fleet:
        fleet.run([("ide", request)] * 8)
        accounting = fleet.accounting
        by_device = fleet.accounting_by_device()
    assert accounting.writes == 8 * 2048
    assert by_device["ide0"].writes == 4 * 2048
    assert by_device["ide1"].writes == 4 * 2048
