"""Tests for the Python stub generator: compiled vs interpreted stubs.

The generated module and the interpreting runtime implement one
semantics; these tests run both against identical simulated devices and
compare results and complete I/O traces.
"""

import pytest

from repro.bus import Bus
from repro.devices.busmouse import BusmouseModel
from repro.devices.cs4236 import VERSION_ID, Cs4236Model
from repro.devices.ne2000 import Ne2000DataPort, Ne2000Model, Ne2000ResetPort
from repro.devices.pic8259 import Pic8259Model
from repro.specs import SPEC_NAMES
from tests.conftest import shipped_spec


def load_generated(name: str):
    """exec the generated module; returns its stub class."""
    source = shipped_spec(name).emit_python()
    namespace: dict = {}
    exec(compile(source, f"{name}_stubs.py", "exec"), namespace)
    (cls,) = [value for key, value in namespace.items()
              if key.endswith("Stubs")]
    return cls


class TestGeneration:
    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_module_is_valid_python(self, name):
        load_generated(name)

    def test_class_name_derived_from_device(self):
        cls = load_generated("busmouse")
        assert cls.__name__ == "LogitechBusmouseStubs"

    def test_docstrings_present(self):
        cls = load_generated("busmouse")
        assert "dx" in cls.get_dx.__doc__


def _mouse_pair():
    machines = []
    for _ in range(2):
        bus = Bus(tracing=True)
        mouse = BusmouseModel()
        mouse.move(5, -3)
        mouse.set_buttons(0b100)
        bus.map_device(0x23C, 4, mouse, "busmouse")
        machines.append((bus, mouse))
    cls = load_generated("busmouse")
    generated = cls(machines[0][0], 0x23C, debug=True)
    interpreted = shipped_spec("busmouse").bind(
        machines[1][0], {"base": 0x23C})
    return machines, generated, interpreted


class TestAgreementBusmouse:
    def test_full_session_identical(self):
        machines, generated, interpreted = _mouse_pair()
        for stubs in (generated, interpreted):
            stubs.set_config("CONFIGURATION")
            stubs.set_signature(0xA5)
            assert stubs.get_signature() == 0xA5
            state = stubs.get_mouse_state()
            assert state == {"dx": 5, "dy": -3, "buttons": 4}
            assert stubs.get_dy() == -3
        assert machines[0][0].trace == machines[1][0].trace

    def test_debug_check_in_generated_code(self):
        _, generated, _ = _mouse_pair()
        with pytest.raises(Exception, match="before"):
            generated.get_dx()  # structure not fetched yet

    def test_enum_check_in_generated_code(self):
        _, generated, _ = _mouse_pair()
        with pytest.raises(Exception, match="illegal value"):
            generated.set_config("NOPE")


class TestAgreementAutomaton:
    def test_cs4236_extended_access(self):
        traces = []
        for kind in ("generated", "interpreted"):
            bus = Bus(tracing=True)
            chip = Cs4236Model()
            bus.map_device(0x534, 2, chip, "cs4236")
            if kind == "generated":
                stubs = load_generated("cs4236")(bus, 0x534, debug=False)
            else:
                stubs = shipped_spec("cs4236").bind(
                    bus, {"base": 0x534}, debug=False)
            stubs.set_left_dac_output(left_dac_attenuation=9,
                                      left_dac_mute=True,
                                      left_dac_pad=False) \
                if kind == "generated" else stubs.set_structure(
                    "left_dac_output", {"left_dac_attenuation": 9,
                                        "left_dac_mute": True,
                                        "left_dac_pad": False})
            assert stubs.get_version() == VERSION_ID
            stubs.set_ACF(True)
            assert not chip.extended_mode
            traces.append([(e.op, e.port, e.value) for e in bus.trace])
        assert traces[0] == traces[1]


class TestAgreementConditionalSerialization:
    def test_pic_init_sequences(self):
        for sngl, ic4, expected_words in (
                ("CASCADED", True, 4), ("SINGLE", False, 2),
                ("CASCADED", False, 3), ("SINGLE", True, 3)):
            results = []
            for kind in ("generated", "interpreted"):
                bus = Bus()
                pic = Pic8259Model()
                bus.map_device(0x20, 2, pic, "pic")
                values = dict(addr_vector=0, ltim="EDGE",
                              adi="INTERVAL8", sngl=sngl, ic4=ic4,
                              vector_base=0x20, slaves=4, sfnm=False,
                              buffered=False, master="BUF_SLAVE",
                              aeoi=False, microprocessor="X8086")
                if kind == "generated":
                    stubs = load_generated("pic8259")(bus, 0x20)
                    stubs.set_init(**values)
                else:
                    stubs = shipped_spec("pic8259").bind(
                        bus, {"base": 0x20})
                    stubs.set_structure("init", values)
                results.append(pic.init_log[0])
            assert results[0] == results[1]
            assert len(results[0]) == expected_words


class TestAgreementBlockTransfer:
    def test_ne2000_remote_dma(self):
        traces = []
        for kind in ("generated", "interpreted"):
            bus = Bus(tracing=True)
            nic = Ne2000Model()
            bus.map_device(0x300, 16, nic, "ne2000")
            bus.map_device(0x310, 2, Ne2000DataPort(nic), "data")
            bus.map_device(0x31F, 1, Ne2000ResetPort(nic), "reset")
            if kind == "generated":
                stubs = load_generated("ne2000")(bus, 0x300, 0x310, 0x31F)
            else:
                stubs = shipped_spec("ne2000").bind(
                    bus, {"base": 0x300, "data": 0x310, "rst": 0x31F})
            stubs.set_st("START")
            stubs.set_remote_byte_count(8)
            stubs.set_remote_start_address(0x4000)
            stubs.set_rd("REMOTE_WRITE")
            stubs.write_dma_data_block([1, 2, 3, 4])
            assert nic.ram[0:8] == bytes([1, 0, 2, 0, 3, 0, 4, 0])
            traces.append([(e.op, e.port, e.value) for e in bus.trace])
        assert traces[0] == traces[1]
