"""Edge-case coverage across the public APIs."""

import pytest

from repro.bus import Bus, BusError
from repro.devil.compiler import compile_file, compile_spec
from repro.devil.errors import DevilRuntimeError


class Ram:
    def __init__(self, size=4):
        self.cells = [0] * size

    def io_read(self, offset, width):
        return self.cells[offset]

    def io_write(self, offset, value, width):
        self.cells[offset] = value


SIMPLE = """
device d (base : bit[8] port @ {0}) {
    register r = base @ 0 : bit[8];
    variable v = r : int(8);
}
"""


class TestCompilerApi:
    def test_compile_file(self, tmp_path):
        path = tmp_path / "d.devil"
        path.write_text(SIMPLE)
        spec = compile_file(str(path))
        assert spec.filename == str(path)
        assert spec.name == "d"

    def test_compile_file_missing(self):
        with pytest.raises(OSError):
            compile_file("/does/not/exist.devil")

    def test_source_retained(self):
        spec = compile_spec(SIMPLE)
        assert spec.source == SIMPLE

    def test_bad_composition_strategy(self):
        spec = compile_spec(SIMPLE)
        bus = Bus()
        bus.map_device(0, 4, Ram())
        with pytest.raises(DevilRuntimeError, match="composition"):
            spec.bind(bus, {"base": 0}, composition="psychic")


class TestSpecsLoader:
    def test_unknown_spec_name(self):
        from repro.specs import load_source
        with pytest.raises(FileNotFoundError):
            load_source("toaster")

    def test_spec_names_all_loadable(self):
        from repro.specs import SPEC_NAMES, load_source
        for name in SPEC_NAMES:
            assert "device" in load_source(name)


class TestRuntimeMisuse:
    def _device(self, source=SIMPLE):
        spec = compile_spec(source)
        bus = Bus()
        bus.map_device(0x10, 4, Ram())
        return spec.bind(bus, {"base": 0x10})

    def test_block_access_on_non_block_variable(self):
        device = self._device()
        with pytest.raises(DevilRuntimeError, match="block"):
            device.read_block("v", 4)

    def test_unknown_structure(self):
        device = self._device()
        with pytest.raises(DevilRuntimeError, match="unknown structure"):
            device.get_structure("nope")

    def test_structure_write_with_unknown_member(self):
        source = """
device d (base : bit[8] port @ {0}) {
    register r = base @ 0 : bit[8];
    structure s = {
        variable a = r[3..0] : int(4);
        variable b = r[7..4] : int(4);
    };
}
"""
        device = self._device(source)
        with pytest.raises(DevilRuntimeError, match="unknown member"):
            device.set_structure("s", {"a": 1, "b": 2, "c": 3})

    def test_write_to_read_only_register(self):
        source = """
device d (base : bit[8] port @ {0}) {
    register r = read base @ 0 : bit[8];
    variable v = r, volatile : int(8);
}
"""
        device = self._device(source)
        assert not hasattr(device, "set_v")
        with pytest.raises(DevilRuntimeError, match="read-only"):
            device.write_register("r", 1)

    def test_read_of_write_only_register(self):
        source = """
device d (base : bit[8] port @ {0}) {
    register r = write base @ 0 : bit[8];
    variable v = r : int(8);
}
"""
        device = self._device(source)
        assert not hasattr(device, "get_v")
        with pytest.raises(DevilRuntimeError, match="write-only"):
            device.read_register("r")

    def test_block_variable_must_cover_whole_register(self):
        source = """
device d (base : bit[8] port @ {0}) {
    register r = base @ 0 : bit[8];
    variable v = r[3..0], block : int(4);
    variable rest = r[7..4] : int(4);
}
"""
        device = self._device(source)
        with pytest.raises(DevilRuntimeError, match="whole register"):
            device.read_block("v", 4)


class TestBusEdges:
    def test_block_read_of_unmapped_port(self):
        with pytest.raises(BusError):
            Bus().block_read(0x999, 4, 16)

    def test_device_exception_propagates(self):
        class Grumpy:
            def io_read(self, offset, width):
                raise BusError("not today")

            def io_write(self, offset, value, width):
                raise BusError("never")

        bus = Bus()
        bus.map_device(0, 1, Grumpy())
        with pytest.raises(BusError, match="not today"):
            bus.inb(0)
        with pytest.raises(BusError, match="never"):
            bus.outb(1, 0)

    def test_adjacent_mappings_allowed(self):
        bus = Bus()
        bus.map_device(0x100, 4, Ram())
        bus.map_device(0x104, 4, Ram())  # touching, not overlapping
        bus.inb(0x103)
        bus.inb(0x104)


class TestCompositionStrategies:
    def test_read_modify_write_refreshes_from_device(self):
        source = """
device d (base : bit[8] port @ {0}) {
    register r = base @ 0 : bit[8];
    variable lo = r[3..0] : int(4);
    variable hi = r[7..4] : int(4);
}
"""
        spec = compile_spec(source)
        bus = Bus()
        ram = Ram()
        bus.map_device(0, 4, ram)
        device = spec.bind(bus, {"base": 0},
                           composition="read-modify-write")
        ram.cells[0] = 0xA0  # device state the cache never saw
        device.set("lo", 0x5)
        # RMW picked up the device's hi nibble; the cache strategy
        # would have composed 0x05.
        assert ram.cells[0] == 0xA5

    def test_cache_strategy_uses_cache(self):
        spec = compile_spec(SIMPLE.replace(
            "variable v = r : int(8);",
            "variable lo = r[3..0] : int(4);"
            "variable hi = r[7..4] : int(4);"))
        bus = Bus()
        ram = Ram()
        bus.map_device(0, 4, ram)
        device = spec.bind(bus, {"base": 0})
        ram.cells[0] = 0xA0
        device.set("lo", 0x5)
        assert ram.cells[0] == 0x05  # hi came from the (empty) cache
