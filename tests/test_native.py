"""Tests for the compiled-C execution strategy (``strategy="native"``).

The exactness bar (after Braibant & Chlipala: equivalence is proven,
not assumed): a native-bound device must produce byte-equal end state,
exact accounting, identical port-I/O traces and identical span streams
vs the interpreter on every shipped spec, in debug and release mode.
Everything that needs a C compiler is gated on discovery; the fallback
tests run everywhere and prove the repo works without one.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.bus import Bus
from repro.bus.bus import BusError
from repro.devil.errors import DevilRuntimeError
from repro.devil.native import (
    NativeBuildError,
    NativeDeviceInstance,
    native_available,
)
from repro.devil.native import build as native_build
from repro.obs.workloads import (
    MOUSE_BASE,
    WORKLOADS,
    bind_stubs,
    build_machine,
    run_workload,
)
from repro.specs import SPEC_NAMES
from tests.conftest import shipped_spec

needs_cc = pytest.mark.skipif(not native_available(),
                              reason="no C compiler on this machine")

ALL_STRATEGIES = ("interpret", "specialize", "generated", "native")


def _normalize(value, seen=None):
    """Address-free snapshot of a device model's state for comparison."""
    if seen is None:
        seen = set()
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    if hasattr(value, "tobytes"):       # numpy arrays, memoryviews
        return value.tobytes()
    if isinstance(value, (list, tuple)):
        return tuple(_normalize(item, seen) for item in value)
    if isinstance(value, dict):
        return tuple(sorted(
            (key, _normalize(item, seen)) for key, item in value.items()))
    if hasattr(value, "__dict__"):
        if id(value) in seen:
            return "<cycle>"
        seen.add(id(value))
        return _normalize(vars(value), seen)
    return value


def _device_state(aux: dict) -> dict:
    return {name: _normalize(model) for name, model in aux.items()}


# ---------------------------------------------------------------------------
# Four-way parity (the acceptance bar)
# ---------------------------------------------------------------------------


@needs_cc
class TestFourWayParity:
    @pytest.mark.parametrize("debug", [False, True],
                             ids=["release", "debug"])
    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_results_trace_accounting_identical(self, name, debug):
        runs = {strategy: run_workload(name, strategy, debug=debug)
                for strategy in ALL_STRATEGIES}
        reference = runs["interpret"]
        assert reference[1], f"{name}: workload produced no trace"
        for strategy in ("specialize", "generated", "native"):
            results, trace, accounting = runs[strategy]
            assert results == reference[0], f"{strategy} results differ"
            assert trace == reference[1], f"{strategy} trace differs"
            assert accounting == reference[2], \
                f"{strategy} accounting differs"

    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_device_end_state_byte_equal(self, name):
        states = {}
        for strategy in ALL_STRATEGIES:
            bus, aux, bases = build_machine(name, tracing=False)
            stubs = bind_stubs(name, strategy, bus, bases, debug=True)
            WORKLOADS[name](stubs, aux)
            states[strategy] = _device_state(aux)
        for strategy in ("specialize", "generated", "native"):
            assert states[strategy] == states["interpret"], \
                f"{strategy} device end-state differs"

    @pytest.mark.parametrize("debug", [False, True],
                             ids=["release", "debug"])
    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_span_streams_identical(self, name, debug):
        def signatures(strategy):
            bus, aux, bases = build_machine(name)
            with obs.observe(bus) as collector:
                stubs = bind_stubs(name, strategy, bus, bases,
                                   debug=debug)
                collector.register_ports(
                    name, getattr(stubs, "_obs_ports", {}))
                WORKLOADS[name](stubs, aux)
            return collector.signatures()

        reference = signatures("interpret")
        assert reference, f"{name}: no spans collected"
        assert signatures("native") == reference

    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_state_blob_is_deterministic(self, name):
        blobs = []
        for _ in range(2):
            bus, aux, bases = build_machine(name, tracing=False)
            stubs = bind_stubs(name, "native", bus, bases, debug=True)
            WORKLOADS[name](stubs, aux)
            blobs.append(stubs.state_blob())
        assert blobs[0] == blobs[1]
        assert len(blobs[0]) > 0


# ---------------------------------------------------------------------------
# Batched dispatch (repeat)
# ---------------------------------------------------------------------------


@needs_cc
class TestRepeat:
    def _machines(self, tracing):
        bus, aux, bases = build_machine("busmouse", tracing=tracing)
        stubs = bind_stubs("busmouse", "native", bus, bases, debug=False)
        return bus, aux, stubs

    def test_direct_batch_matches_per_call_loop(self):
        bus_n, _aux, native = self._machines(tracing=False)
        native.set_config("CONFIGURATION")
        native.get_mouse_state()
        last_native = native.repeat("get_dx", 500)
        native.sync_to_bus()

        bus_i, aux_i, bases_i = build_machine("busmouse", tracing=False)
        interp = bind_stubs("busmouse", "interpret", bus_i, bases_i,
                            debug=False)
        interp.set_config("CONFIGURATION")
        interp.get_mouse_state()
        for _ in range(500):
            last_interp = interp.get_dx()
        assert last_native == last_interp
        assert bus_n.accounting.snapshot() == bus_i.accounting.snapshot()

    def test_traced_batch_matches_per_call_loop(self):
        bus_n, _aux, native = self._machines(tracing=True)
        native.set_config("CONFIGURATION")
        last_native = native.repeat("get_mouse_state", 25)

        bus_i, aux_i, bases_i = build_machine("busmouse")
        interp = bind_stubs("busmouse", "interpret", bus_i, bases_i,
                            debug=False)
        interp.set_config("CONFIGURATION")
        for _ in range(25):
            last_interp = interp.get_mouse_state()
        assert last_native == last_interp
        assert list(bus_n.trace) == list(bus_i.trace)
        assert bus_n.accounting.snapshot() == bus_i.accounting.snapshot()

    def test_io_batch_runs_direct_on_plain_bus(self):
        bus, _aux, stubs = self._machines(tracing=False)
        stubs.set_config("CONFIGURATION")
        stubs.repeat("get_mouse_state", 10)
        ring = stubs.flight_recorder()
        assert ring, "direct-mode batch should populate the trace ring"
        stubs.sync_to_bus()
        assert bus.accounting.reads > 0

    def test_setter_batch(self):
        bus, aux, bases = build_machine("permedia2", tracing=False)
        stubs = bind_stubs("permedia2", "native", bus, bases, debug=True)
        stubs.repeat("set_fb_write_mask", 64, 0xDEADBEEF)
        stubs.sync_to_bus()
        assert bus.accounting.writes == 64
        assert aux["gpu"].write_mask == 0xDEADBEEF

    def test_struct_setter_batch_takes_declaration_order(self):
        bus, aux, bases = build_machine("cs4236", tracing=False)
        stubs = bind_stubs("cs4236", "native", bus, bases, debug=True)
        stubs.repeat("set_left_dac_output", 5, 9, True, False)
        state = stubs.get_left_dac_output()
        assert state == {"left_dac_attenuation": 9,
                         "left_dac_mute": True,
                         "left_dac_pad": False}

    def test_struct_setter_batch_arity_checked(self):
        bus, aux, bases = build_machine("cs4236", tracing=False)
        stubs = bind_stubs("cs4236", "native", bus, bases, debug=True)
        with pytest.raises(DevilRuntimeError, match="positional"):
            stubs.repeat("set_left_dac_output", 2, 9)

    def test_collector_present_falls_back_to_python_loop(self):
        bus, aux, bases = build_machine("busmouse")
        with obs.observe(bus) as collector:
            stubs = bind_stubs("busmouse", "native", bus, bases,
                               debug=False)
            collector.register_ports(
                "busmouse", getattr(stubs, "_obs_ports", {}))
            stubs.set_config("CONFIGURATION")
            stubs.repeat("get_mouse_state", 7)
        spans = [s for s in collector.spans
                 if s.stub == "get_mouse_state"]
        assert len(spans) == 7    # one span per call, not per batch

    def test_zero_and_negative_counts_are_noops(self):
        _bus, _aux, stubs = self._machines(tracing=False)
        assert stubs.repeat("set_config", 0, "CONFIGURATION") is None
        assert stubs.repeat("set_config", -3, "CONFIGURATION") is None

    def test_unknown_stub_rejected(self):
        _bus, _aux, stubs = self._machines(tracing=False)
        with pytest.raises(DevilRuntimeError, match="unknown stub"):
            stubs.repeat("get_nonsense", 3)

    def test_setter_batch_validates_value_first(self):
        _bus, _aux, stubs = self._machines(tracing=False)
        with pytest.raises(DevilRuntimeError):
            stubs.repeat("set_config", 5, "NOT_A_SYMBOL")

    def test_error_mid_batch_propagates(self):
        class Boom:
            def __init__(self):
                self.calls = 0

            def io_read(self, offset, width):
                self.calls += 1
                if self.calls > 3:
                    raise RuntimeError("device exploded")
                return 0xA5

            def io_write(self, value, offset=0, width=8):
                pass

        bus = Bus()
        boom = Boom()
        bus.map_device(MOUSE_BASE, 4, boom, "boom")
        stubs = shipped_spec("busmouse").bind(
            bus, {"base": MOUSE_BASE}, debug=False, strategy="native")
        with pytest.raises(RuntimeError, match="device exploded"):
            stubs.repeat("get_signature", 10)
        stubs.sync_to_bus()
        # The three successful accesses are accounted, no more.
        assert bus.accounting.reads == 3


# ---------------------------------------------------------------------------
# State seam and caches
# ---------------------------------------------------------------------------


@needs_cc
class TestStateSeam:
    def test_cached_register_reflects_c_state(self):
        bus, aux, bases = build_machine("busmouse", tracing=False)
        stubs = bind_stubs("busmouse", "native", bus, bases, debug=False)
        stubs.set_config("CONFIGURATION")
        assert stubs.cached_register("cr") is not None
        assert stubs.cached_register("not_a_register") is None

    def test_invalidate_caches_forces_refetch(self):
        bus, aux, bases = build_machine("busmouse", tracing=False)
        stubs = bind_stubs("busmouse", "native", bus, bases, debug=False)
        stubs.set_config("CONFIGURATION")
        stubs.get_mouse_state()
        before = bus.accounting.reads
        stubs.invalidate_caches()
        stubs.get_mouse_state()
        assert bus.accounting.reads > before

    def test_flight_recorder_decodes_ring(self):
        bus, aux, bases = build_machine("busmouse", tracing=False)
        stubs = bind_stubs("busmouse", "native", bus, bases, debug=False)
        stubs.set_config("CONFIGURATION")
        stubs.repeat("get_mouse_state", 3)
        entries = stubs.flight_recorder()
        assert entries
        assert {entry.op for entry in entries} <= {"r", "w"}
        assert all(entry.width in (8, 16, 32) for entry in entries)


# ---------------------------------------------------------------------------
# Build cache
# ---------------------------------------------------------------------------


@needs_cc
class TestBuildCache:
    def test_second_bind_hits_the_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(native_build.CACHE_ENV, str(tmp_path))
        bus, aux, bases = build_machine("busmouse", tracing=False)
        before = native_build.BUILD_COUNT
        bind_stubs("busmouse", "native", bus, bases, debug=False)
        assert native_build.BUILD_COUNT == before + 1
        bus2, aux2, bases2 = build_machine("busmouse", tracing=False)
        bind_stubs("busmouse", "native", bus2, bases2, debug=False)
        assert native_build.BUILD_COUNT == before + 1   # no rebuild

    def test_debug_flag_keys_the_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(native_build.CACHE_ENV, str(tmp_path))
        bus, aux, bases = build_machine("busmouse", tracing=False)
        before = native_build.BUILD_COUNT
        bind_stubs("busmouse", "native", bus, bases, debug=False)
        bus2, aux2, bases2 = build_machine("busmouse", tracing=False)
        bind_stubs("busmouse", "native", bus2, bases2, debug=True)
        assert native_build.BUILD_COUNT == before + 2
        names = [p.name for p in tmp_path.iterdir() if p.is_file()]
        assert any("-rel-" in name for name in names)
        assert any("-dbg-" in name for name in names)

    def test_build_key_varies_with_inputs(self):
        key = native_build.build_key("x", "h", "s", False)
        assert native_build.build_key("x", "h", "s", True) != key
        assert native_build.build_key("x", "H", "s", False) != key
        assert native_build.build_key("x", "h", "S", False) != key


# ---------------------------------------------------------------------------
# No-compiler behaviour (runs everywhere)
# ---------------------------------------------------------------------------


class TestNoCompilerFallback:
    @pytest.fixture
    def no_compiler(self, monkeypatch):
        monkeypatch.setattr(native_build, "_discover",
                            lambda: (None, "none"))
        native_build._reset_compiler_cache()
        yield
        native_build._reset_compiler_cache()

    def test_native_available_false(self, no_compiler):
        assert native_build.native_available() is False

    def test_native_strategy_raises_clear_diagnostic(self, no_compiler):
        bus, aux, bases = build_machine("busmouse", tracing=False)
        with pytest.raises(NativeBuildError,
                           match="no C compiler found"):
            bind_stubs("busmouse", "native", bus, bases, debug=False)

    def test_auto_falls_back_to_specialize(self, no_compiler):
        bus, aux, bases = build_machine("busmouse", tracing=False)
        stubs = bind_stubs("busmouse", "auto", bus, bases, debug=False)
        assert stubs.strategy == "specialize"

    def test_auto_workload_still_exact(self, no_compiler):
        reference = run_workload("busmouse", "interpret")
        assert run_workload("busmouse", "auto") == reference


@needs_cc
class TestAutoStrategy:
    def test_auto_picks_native_with_a_compiler(self):
        bus, aux, bases = build_machine("busmouse", tracing=False)
        stubs = bind_stubs("busmouse", "auto", bus, bases, debug=False)
        assert isinstance(stubs, NativeDeviceInstance)
        assert stubs.strategy == "native"

    def test_auto_with_shadow_cache_uses_specializer(self):
        bus, aux, bases = build_machine("ide", tracing=False)
        stubs = bind_stubs("ide", "auto", bus, bases, debug=False,
                           shadow_cache=True)
        assert stubs.strategy == "specialize"


# ---------------------------------------------------------------------------
# Unsupported features and error paths
# ---------------------------------------------------------------------------


@needs_cc
class TestRejections:
    def test_transactions_rejected(self):
        bus, aux, bases = build_machine("ide", tracing=False)
        stubs = bind_stubs("ide", "native", bus, bases, debug=False)
        with pytest.raises(DevilRuntimeError, match="transactions"):
            stubs.txn()

    def test_shadow_cache_rejected(self):
        bus, aux, bases = build_machine("ide", tracing=False)
        with pytest.raises(DevilRuntimeError, match="shadow_cache"):
            bind_stubs("ide", "native", bus, bases, debug=False,
                       shadow_cache=True)

    def test_rmw_composition_rejected(self):
        spec = shipped_spec("busmouse")
        with pytest.raises(DevilRuntimeError, match="composition"):
            spec.bind(Bus(), {"base": MOUSE_BASE}, strategy="native",
                      composition="read-modify-write")

    def test_unknown_strategy_names_the_choices(self):
        spec = shipped_spec("busmouse")
        with pytest.raises(DevilRuntimeError, match="native"):
            spec.bind(Bus(), {"base": MOUSE_BASE}, strategy="compiled")


@needs_cc
class TestErrorPaths:
    def test_unmapped_port_raises_bus_error(self):
        stubs = shipped_spec("busmouse").bind(
            Bus(), {"base": MOUSE_BASE}, debug=False, strategy="native")
        with pytest.raises(BusError, match="no device mapped"):
            stubs.get_signature()
        with pytest.raises(BusError, match="no device mapped"):
            stubs.repeat("get_signature", 4)

    def test_member_read_before_fetch_debug_check(self):
        bus, aux, bases = build_machine("busmouse", tracing=False)
        stubs = bind_stubs("busmouse", "native", bus, bases, debug=True)
        with pytest.raises(DevilRuntimeError, match="get_mouse_state"):
            stubs.get_dx()

    MEMORY_SOURCE = """
    device memtest (base : bit[8] port @ {0}) {
        private variable xm : bool;
        register r = base @ 0, set {xm = false} : bit[8];
        variable gate = r[0], set {xm = gate}, write trigger for true
            : bool;
        variable rest = r[7..1] : int(7);
    }
    """

    @staticmethod
    def _ram_bus():
        from tests.test_runtime import RamDevice
        bus = Bus()
        bus.map_device(0x10, 1, RamDevice(1), "ram")
        return bus

    @pytest.mark.parametrize("debug", [False, True],
                             ids=["release", "debug"])
    def test_memory_read_before_initialisation(self, debug):
        from repro.devil.compiler import compile_spec
        spec = compile_spec(self.MEMORY_SOURCE)
        stubs = spec.bind(self._ram_bus(), {"base": 0x10}, debug=debug,
                          strategy="native")
        with pytest.raises(DevilRuntimeError,
                           match="read before initialisation"):
            stubs.get("xm")
        # C-side set-action initialises the memory mirror; the generic
        # accessor must observe it even in release builds.
        stubs.set_gate(True)
        assert stubs.get("xm") is True
        stubs.set_rest(3)       # register set-action: xm = false
        stubs.get_rest()
        assert stubs.get("xm") is False

    @pytest.mark.parametrize("debug", [False, True],
                             ids=["release", "debug"])
    def test_memory_matches_interpreter(self, debug):
        from repro.devil.compiler import compile_spec
        spec = compile_spec(self.MEMORY_SOURCE)
        native = spec.bind(self._ram_bus(), {"base": 0x10}, debug=debug,
                           strategy="native")
        interp = spec.bind(self._ram_bus(), {"base": 0x10}, debug=debug,
                           strategy="interpret")
        for instance in (native, interp):
            instance.set_gate(True)
            instance.set_rest(5)
            instance.get_rest()
        assert native.get("xm") == interp.get("xm")
        assert native.get_rest() == interp.get_rest()

    def test_generic_accessors_route_natively(self):
        bus, aux, bases = build_machine("busmouse", tracing=False)
        stubs = bind_stubs("busmouse", "native", bus, bases, debug=False)
        stubs.set("config", "CONFIGURATION")
        assert stubs.get("signature") == stubs.get_signature()
        state = stubs.get_structure("mouse_state")
        assert set(state) == {"dx", "dy", "buttons"}
        with pytest.raises(DevilRuntimeError, match="unknown variable"):
            stubs.get("nonsense")

    def test_block_errors_match_interpreter(self):
        bus, aux, bases = build_machine("ide", tracing=False)
        stubs = bind_stubs("ide", "native", bus, bases, debug=False)
        with pytest.raises(BusError, match="negative block count"):
            stubs.read_ide_data_block(-1)
        assert stubs.read_ide_data_block(0) == []
        assert stubs.write_ide_data_block([]) == 0


# ---------------------------------------------------------------------------
# Fleet integration
# ---------------------------------------------------------------------------


@needs_cc
@pytest.mark.concurrency
class TestFleetIntegration:
    def test_thread_fleet_runs_native_devices(self):
        from repro.engine import Fleet

        with Fleet(["busmouse", "ide"], strategy="native",
                   workers=2, op_latency_us=0.0) as fleet:
            schedule = [(name, WORKLOADS[name])
                        for _ in range(4) for name in ("busmouse", "ide")]
            fleet.run(schedule)
            assert fleet.completed() == len(schedule)
        assert fleet.accounting.total_ops > 0
