"""Tests for the live fleet telemetry plane (``repro.obs.live``).

Three layers, mirroring the module split:

* **instruments** — the new :class:`Gauge`, torn-counter safety under
  thread hammering, histogram quantiles and cross-process snapshot
  merging;
* **transport** — the shared-memory seqlock heartbeat slot, the flight
  recorder ring, the Prometheus text exporter and the JSONL snapshot
  sink (both validated against ``docs/trace_schema.json``);
* **the plane on a running fleet** — heartbeats, latency histograms,
  live ``bus.trace_dropped``, stall detection against a deliberately
  wedged thread worker, and the periodic monitor (marked
  ``concurrency``; the process-backend wedge lives in
  ``tests/test_fleet_stress.py``).
"""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro.engine.shm import HEARTBEAT_SLOT_BYTES, HeartbeatSlot, \
    create_heartbeat_memory
from repro.obs import to_prometheus
from repro.obs.export import JsonlSnapshotSink
from repro.obs.live import (
    DEAD,
    HEALTHY,
    STALLED,
    FleetHealth,
    FleetTelemetry,
    FlightRecorder,
    Heartbeat,
    HeartbeatBoard,
    LiveMonitor,
    WorkerPulse,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.validate import load_schema, validate


@pytest.fixture(scope="module")
def schema():
    return load_schema()


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("queue.depth", {"worker": "w0"})
        assert gauge.value == 0.0
        gauge.set(7)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 8.0

    def test_snapshot_shape(self):
        gauge = Gauge("queue.depth", {"worker": "w0"})
        gauge.set(3.5)
        assert gauge.snapshot() == {"type": "gauge",
                                    "name": "queue.depth",
                                    "labels": {"worker": "w0"},
                                    "value": 3.5}

    def test_registry_get_or_create_and_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("fleet.inflight", worker="w1")
        gauge.set(1)
        assert registry.gauge("fleet.inflight", worker="w1") is gauge
        assert registry.value("fleet.inflight", worker="w1") == 1.0


class TestCounterRaiseTo:
    def test_monotonic_lift(self):
        counter = Counter("bus.trace_dropped", {})
        counter.raise_to(10)
        counter.raise_to(4)  # never goes backward
        counter.raise_to(12)
        assert counter.value == 12


class TestTornCounterHammer:
    """Satellite: instrument mutation is now locked — N threads
    hammering one Counter/Gauge/Histogram must lose no update (the
    pure-Python ``+=`` read-modify-write tears without the lock)."""

    THREADS = 8
    ROUNDS = 2_500

    def _hammer(self, work):
        threads = [threading.Thread(target=work)
                   for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_is_exact_under_contention(self):
        counter = Counter("hammer", {})
        self._hammer(lambda: [counter.inc()
                              for _ in range(self.ROUNDS)])
        assert counter.value == self.THREADS * self.ROUNDS

    def test_gauge_inc_dec_balances_under_contention(self):
        gauge = Gauge("hammer", {})
        def work():
            for _ in range(self.ROUNDS):
                gauge.inc(2.0)
                gauge.dec(1.0)
        self._hammer(work)
        assert gauge.value == self.THREADS * self.ROUNDS

    def test_histogram_counts_are_exact_under_contention(self):
        histogram = Histogram("hammer", {}, (10.0, 100.0))
        self._hammer(lambda: [histogram.observe(50.0)
                              for _ in range(self.ROUNDS)])
        expected = self.THREADS * self.ROUNDS
        assert histogram.count == expected
        assert histogram.total == 50.0 * expected
        assert histogram.bucket_counts[1] == expected


class TestHistogramQuantile:
    def test_quantile_returns_bucket_upper_bound(self):
        histogram = Histogram("lat", {}, (10.0, 100.0, 1000.0))
        for value in (5, 5, 50, 50, 50, 500):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 100.0
        assert histogram.quantile(0.99) == 1000.0

    def test_quantile_overflow_and_empty(self):
        histogram = Histogram("lat", {}, (10.0,))
        assert histogram.quantile(0.5) == 0.0
        histogram.observe(1e9)
        assert histogram.quantile(0.5) == 1e9  # the observed maximum

    def test_merge_snapshot_folds_worker_deltas(self):
        local = Histogram("lat", {}, (10.0, 100.0))
        for value in (5, 50, 500):
            local.observe(value)
        merged = Histogram("lat", {}, (10.0, 100.0))
        merged.observe(7)
        merged.merge_snapshot(local.snapshot())
        assert merged.count == 4
        assert merged.total == 562.0
        assert merged.minimum == 5.0
        assert merged.maximum == 500.0

    def test_merge_snapshot_rejects_mismatched_buckets(self):
        other = Histogram("lat", {}, (1.0, 2.0))
        with pytest.raises(ValueError, match="bucket"):
            Histogram("lat", {}, (10.0,)).merge_snapshot(
                other.snapshot())


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestPrometheusExport:
    def test_counter_gauge_histogram_render(self):
        registry = MetricsRegistry()
        registry.counter("fleet.submitted", spec="ide").inc(3)
        registry.gauge("fleet.queue_depth", worker="w0").set(2)
        histogram = registry.histogram("fleet.request_us",
                                       (10.0, 100.0), spec="ide")
        histogram.observe(5)
        histogram.observe(50)
        text = to_prometheus(registry)
        lines = text.splitlines()
        assert "# TYPE devil_fleet_submitted_total counter" in lines
        assert 'devil_fleet_submitted_total{spec="ide"} 3' in lines
        assert 'devil_fleet_queue_depth{worker="w0"} 2' in lines
        # Cumulative buckets plus the +Inf catch-all, sum and count.
        assert 'devil_fleet_request_us_bucket{le="10",spec="ide"} 1' \
            in lines
        assert 'devil_fleet_request_us_bucket{le="100",spec="ide"} 2' \
            in lines
        assert 'devil_fleet_request_us_bucket{le="+Inf",spec="ide"} 2' \
            in lines
        assert 'devil_fleet_request_us_count{spec="ide"} 2' in lines

    def test_output_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("a.b", y="2", x="1").inc()
            registry.counter("a.b", x="1", y="2").inc()
            registry.gauge("c").set(1)
            return to_prometheus(registry)
        assert build() == build()

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd", label='say "hi"\n\\x').inc()
        text = to_prometheus(registry)
        assert r'label="say \"hi\"\n\\x"' in text


class TestJsonlSnapshotSink:
    def test_records_validate_against_schema(self, schema):
        registry = MetricsRegistry()
        registry.counter("fleet.submitted", spec="ide").inc()
        registry.gauge("fleet.inflight", worker="w0").set(1)
        buffer = io.StringIO()
        sink = JsonlSnapshotSink(buffer)
        registry.add_sink(sink)
        registry.flush()
        registry.flush()
        assert sink.writes == 2
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert record["record"] == "metrics"
            validate(record, schema)

    def test_appends_to_path(self, tmp_path):
        target = tmp_path / "metrics.jsonl"
        registry = MetricsRegistry()
        registry.counter("n").inc()
        sink = JsonlSnapshotSink(str(target))
        sink(registry.snapshot())
        sink(registry.snapshot())
        assert len(target.read_text().splitlines()) == 2


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_bounds_and_counts_evictions(self):
        recorder = FlightRecorder(limit=4)
        for index in range(10):
            recorder.record("submit", worker="w0", index=index)
        events = recorder.events()
        assert len(events) == 4
        assert recorder.dropped == 6
        assert [event.detail["index"] for event in events] \
            == [6, 7, 8, 9]

    def test_dump_jsonl_validates_and_appends(self, tmp_path, schema):
        recorder = FlightRecorder(limit=8)
        recorder.record("submit", spec="ide", device="ide0",
                        request="ide_sector_read")
        recorder.record("stall", worker="w1", age_s=1.25)
        target = tmp_path / "flight.jsonl"
        assert recorder.dump_jsonl(str(target)) == 2
        assert recorder.dump_jsonl(str(target)) == 2  # appends
        lines = target.read_text().splitlines()
        assert len(lines) == 4
        for line in lines:
            validate(json.loads(line), schema)

    def test_dump_text_is_human_readable(self):
        recorder = FlightRecorder()
        recorder.record("sync", worker="pfleet-w0", sync_id=3)
        text = recorder.dump_text()
        assert "1 event(s)" in text
        assert "sync" in text and "pfleet-w0" in text

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError, match="limit"):
            FlightRecorder(limit=0)


# ---------------------------------------------------------------------------
# Heartbeat transports
# ---------------------------------------------------------------------------


class TestHeartbeatSlot:
    def test_roundtrip_latest_value_semantics(self):
        slot = HeartbeatSlot(create_heartbeat_memory())
        try:
            assert slot.read() is None  # nothing published yet
            for completed in (1, 2, 3):
                slot.publish(Heartbeat(worker="pfleet-w0",
                                       backend="process",
                                       completed=completed,
                                       timestamp=123.0))
            beat = slot.read()
            assert beat.completed == 3  # only the latest survives
            assert beat.worker == "pfleet-w0"
        finally:
            slot.close()
            slot.unlink()

    def test_torn_write_reads_as_none(self):
        slot = HeartbeatSlot(create_heartbeat_memory())
        try:
            slot.publish(Heartbeat(worker="w", backend="process"))
            # Fake a writer parked mid-publish: odd sequence number.
            slot.memory.buf[0:8] = (99).to_bytes(4, "big") * 2
            assert slot.read(retries=2) is None
        finally:
            slot.close()
            slot.unlink()

    def test_oversized_record_is_rejected(self):
        slot = HeartbeatSlot(create_heartbeat_memory())
        try:
            beat = Heartbeat(worker="w" * HEARTBEAT_SLOT_BYTES,
                             backend="process")
            with pytest.raises(ValueError, match="slot"):
                slot.publish(beat)
        finally:
            slot.close()
            slot.unlink()


class TestWorkerPulse:
    def test_pulse_state_rides_in_heartbeats(self):
        board = HeartbeatBoard()
        clock = lambda: 42.0
        pulse = WorkerPulse(board, "fleet-w0", "thread", clock=clock)
        pulse.begin("ide_sector_read")
        beat = board.latest()["fleet-w0"]
        assert beat.inflight == "ide_sector_read"
        assert beat.timestamp == 42.0
        pulse.done(150.0)
        pulse.begin("pm2_fill_rect")
        pulse.done(250.0, error=True, trace_dropped=5)
        beat = board.latest()["fleet-w0"]
        assert beat.inflight is None
        assert beat.completed == 2
        assert beat.errors == 1
        assert beat.trace_dropped == 5
        assert beat.latency_p50_us == 250.0

    def test_heartbeat_record_validates(self, schema):
        beat = Heartbeat(worker="w0", backend="thread", completed=3,
                         inflight=None, timestamp=1.0,
                         latency_p50_us=10.0, latency_p95_us=20.0)
        validate(beat.to_dict(), schema)


# ---------------------------------------------------------------------------
# The plane on running fleets (thread backend; process wedge is in
# tests/test_fleet_stress.py)
# ---------------------------------------------------------------------------


def _wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    return predicate()


@pytest.mark.concurrency
class TestThreadFleetLive:
    def _fleet(self, **kwargs):
        from repro.engine import Fleet
        kwargs.setdefault("telemetry", True)
        return Fleet(["ide", "permedia2", "ne2000"], workers=2,
                     **kwargs)

    def test_heartbeats_latency_and_gauges(self):
        from repro.engine import MIXED_REQUESTS
        with self._fleet() as fleet:
            for _ in range(4):
                for spec, request in MIXED_REQUESTS.items():
                    fleet.submit(spec, request)
            fleet.drain()
            health = fleet.health_view()
            rows = health.check()
            assert {row.status for row in rows} == {HEALTHY}
            assert sum(row.completed for row in rows) == 12
            telemetry = fleet.telemetry
            assert telemetry.observed_p95_us() > 0.0
            submitted = sum(
                counter.value for counter
                in telemetry.metrics.find("fleet.submitted"))
            assert submitted == 12
            for row in rows:
                assert telemetry.metrics.value(
                    "fleet.inflight", worker=row.worker) == 0
            kinds = [event.kind for event
                     in telemetry.recorder.events()]
            assert kinds.count("submit") == 12
            assert "drain" in kinds

    def test_telemetry_off_has_no_plane(self):
        with self._fleet(telemetry=None) as fleet:
            assert fleet.telemetry is None
            with pytest.raises(ValueError, match="telemetry"):
                FleetHealth(fleet)

    def test_trace_dropped_is_surfaced_live(self):
        from repro.engine import MIXED_REQUESTS
        with self._fleet(tracing=True, trace_limit=8) as fleet:
            for _ in range(4):
                fleet.submit("ide", MIXED_REQUESTS["ide"])
            fleet.drain()
            fleet.health_view().check()
            dropped = fleet.telemetry.metrics.value("bus.trace_dropped")
            assert dropped == fleet.bus.trace_dropped
            assert dropped > 0

    def test_wedged_thread_worker_stalls_then_recovers(self, tmp_path):
        release = threading.Event()

        def wedge(stubs, aux):
            release.wait(20.0)
            return "released"

        dump = tmp_path / "flight.jsonl"
        with self._fleet() as fleet:
            fleet.telemetry.dump_path = str(dump)
            health = fleet.health_view(stall_after=0.2)
            fleet.submit("ide", wedge)
            try:
                statuses = _wait_for(
                    lambda: ("stalled" in
                             health.statuses().values())
                    and health.statuses())
                assert STALLED in statuses.values()
                kinds = [event.kind for event
                         in fleet.telemetry.recorder.events()]
                assert "stall" in kinds
                assert dump.exists()  # automatic post-mortem
            finally:
                release.set()
            fleet.drain()
            assert set(health.statuses().values()) == {HEALTHY}
            kinds = [event.kind for event
                     in fleet.telemetry.recorder.events()]
            assert "recovered" in kinds

    def test_dead_worker_is_reported(self):
        with self._fleet() as fleet:
            fleet.drain()
            health = fleet.health_view()
            fleet.pool._threads[0].join(0)  # prove it's alive first
            assert health.statuses()["fleet-w0"] == HEALTHY
        # After shutdown every pool thread is gone.
        assert all(status == DEAD
                   for status in health.statuses().values())

    def test_live_monitor_logs_validating_records(self, tmp_path,
                                                  schema):
        from repro.engine import MIXED_REQUESTS
        log = tmp_path / "health.jsonl"
        with self._fleet() as fleet:
            with LiveMonitor(fleet, interval=0.05,
                             log_path=str(log)) as monitor:
                for _ in range(4):
                    for spec, request in MIXED_REQUESTS.items():
                        fleet.submit(spec, request)
                fleet.drain()
            assert monitor.samples >= 1
        records = [json.loads(line)
                   for line in log.read_text().splitlines()]
        kinds = {record["record"] for record in records}
        assert "health" in kinds and "heartbeat" in kinds
        for record in records:
            validate(record, schema)

    def test_monitor_rejects_nonpositive_interval(self):
        with self._fleet() as fleet:
            fleet.drain()
            with pytest.raises(ValueError, match="interval"):
                LiveMonitor(fleet, interval=0.0)


@pytest.mark.concurrency
class TestTelemetrySharing:
    def test_explicit_instance_shares_registry(self):
        from repro.engine import MIXED_REQUESTS, Fleet
        registry = MetricsRegistry()
        telemetry = FleetTelemetry(metrics=registry)
        with Fleet(["ide"], workers=2, telemetry=telemetry) as fleet:
            assert fleet.telemetry is telemetry
            fleet.submit("ide", MIXED_REQUESTS["ide"])
            fleet.drain()
        assert registry.value("fleet.submitted", spec="ide",
                              backend="thread") == 1
