"""Shadow-cache and coalescing parity tests (§4.3, Tables 2-4).

The tentpole invariant of the shadow-cache/transaction work: all three
execution strategies — interpreter, bind-time specializer, generated
stub module — share one static :class:`~repro.devil.plan.AccessPlan`
and must therefore agree *exactly* on which reads are elided, which
writes coalesce, and what the device sees on the wire.  These tests
pin the plan classification, the elision/invalidation semantics, and
then prove bit-identical results, bus traces and accounting across
every strategy x shadow-cache x debug combination, for every shipped
spec and for the transactional workload variants.
"""

import json
import pathlib

import pytest

from repro.bus import Bus
from repro.devil.compiler import compile_spec
from repro.devil.plan import access_plan
from repro.obs.workloads import (
    STRATEGIES,
    TXN_WORKLOADS,
    WORKLOADS,
    build_machine,
    bind_stubs,
    run_txn_workload,
    run_workload,
)
from repro.specs import SPEC_NAMES, compile_shipped
from tests.conftest import shipped_spec


# ---------------------------------------------------------------------------
# Static access-plan classification
# ---------------------------------------------------------------------------


class TestAccessPlan:
    def test_ide_classification(self):
        plan = access_plan(shipped_spec("ide").model)
        assert plan["status_reg"].classification == "volatile"
        assert not plan["status_reg"].read_elidable
        assert plan["command_reg"].classification == "trigger"
        assert plan["command_reg"].write_barrier
        assert not plan["command_reg"].read_barrier
        assert plan["data_reg"].classification == "trigger"
        assert plan["data_reg"].read_barrier
        assert plan["device_reg"].classification == "cacheable"
        assert plan["device_reg"].read_elidable
        assert plan["nsect_reg"].read_elidable

    def test_write_only_register_is_cacheable_but_not_elidable(self):
        plan = access_plan(shipped_spec("ide").model)
        devctl = plan["devctl_reg"] if "devctl_reg" in plan.registers \
            else plan["features_reg"]
        assert devctl.classification == "cacheable"
        assert not devctl.read_elidable  # write-only: nothing to elide

    def test_busmouse_classification(self):
        plan = access_plan(shipped_spec("busmouse").model)
        assert plan["sig_reg"].classification == "trigger"
        for name in ("x_low", "x_high", "y_low", "y_high"):
            assert plan[name].classification == "volatile"

    def test_permedia2_has_no_elidable_reads(self):
        """Every readable Permedia2 register is volatile: coalescing
        applies, elision never does."""
        plan = access_plan(shipped_spec("permedia2").model)
        assert plan.elidable_registers() == []

    def test_variable_elidable_excludes_memory_and_members(self):
        model = shipped_spec("busmouse").model
        plan = access_plan(model)
        for variable in model.variables.values():
            if variable.memory or variable.structure is not None:
                assert not plan.variable_elidable(variable)

    def test_every_strategy_consumes_the_same_plan(self):
        for name in SPEC_NAMES:
            model = shipped_spec(name).model
            assert access_plan(model) is access_plan(model)


# ---------------------------------------------------------------------------
# Elision and invalidation semantics (one mini machine, three strategies)
# ---------------------------------------------------------------------------


MINI = """
device d (base : bit[8] port @ {0..2}) {
    register r = base @ 0 : bit[8];
    variable plain = r : int(8);
    register s = base @ 1 : bit[8];
    variable moody = s, volatile : int(8);
    register t = base @ 2 : bit[8];
    variable go = t, write trigger : int(8);
}
"""


class Ram:
    def __init__(self):
        self.cells = [0x11, 0x22, 0x33, 0x44]
        self.reads = 0
        self.writes = 0

    def io_read(self, offset, width):
        self.reads += 1
        return self.cells[offset]

    def io_write(self, offset, value, width):
        self.writes += 1
        self.cells[offset] = value


def mini(strategy="interpret", shadow_cache=True, debug=False):
    spec = compile_spec(MINI)
    bus = Bus()
    ram = Ram()
    bus.map_device(0x10, 4, ram)
    device = spec.bind(bus, {"base": 0x10}, debug=debug,
                       strategy=strategy, shadow_cache=shadow_cache)
    return bus, ram, device


class TestElision:
    @pytest.mark.parametrize("strategy", STRATEGIES[:2])
    def test_second_read_is_elided(self, strategy):
        bus, ram, device = mini(strategy)
        assert device.get_plain() == 0x11
        assert device.get_plain() == 0x11
        assert ram.reads == 1
        assert bus.accounting.elided_reads == 1

    @pytest.mark.parametrize("strategy", STRATEGIES[:2])
    def test_write_keeps_shadow_valid(self, strategy):
        bus, ram, device = mini(strategy)
        device.set_plain(0x5A)
        assert device.get_plain() == 0x5A
        assert ram.reads == 0 and ram.writes == 1
        assert bus.accounting.elided_reads == 1

    @pytest.mark.parametrize("strategy", STRATEGIES[:2])
    def test_volatile_is_never_elided(self, strategy):
        bus, ram, device = mini(strategy)
        for _ in range(3):
            device.get_moody()
        assert ram.reads == 3
        assert bus.accounting.elided_reads == 0

    @pytest.mark.parametrize("strategy", STRATEGIES[:2])
    def test_trigger_write_invalidates_everything(self, strategy):
        bus, ram, device = mini(strategy)
        device.get_plain()
        device.set_go(1)       # write-trigger: barrier
        device.get_plain()
        assert ram.reads == 2  # re-read forced after the barrier

    @pytest.mark.parametrize("strategy", STRATEGIES[:2])
    def test_invalidate_caches_drops_shadows(self, strategy):
        bus, ram, device = mini(strategy)
        device.get_plain()
        instance = getattr(device, "_instance", device)
        instance.invalidate_caches()
        device.get_plain()
        assert ram.reads == 2

    @pytest.mark.parametrize("strategy", STRATEGIES[:2])
    def test_shadow_cache_off_by_default(self, strategy):
        bus, ram, device = mini(strategy, shadow_cache=False)
        device.get_plain()
        device.get_plain()
        assert ram.reads == 2
        assert bus.accounting.elided_reads == 0

    def test_rmw_composition_disables_shadow_cache(self):
        spec = compile_spec(MINI)
        bus = Bus()
        bus.map_device(0x10, 4, Ram())
        device = spec.bind(bus, {"base": 0x10},
                           composition="read-modify-write",
                           shadow_cache=True)
        assert not device.shadow_cache

    def test_elided_read_still_mode_checked(self):
        """Debug-mode protocol checks run even when the bus is not
        touched: elision must not weaken §3.2 checking."""
        bus, ram, device = mini("interpret", debug=True)
        device.get_plain()
        assert device.get_plain() == 0x11  # elided, but checked path

    def test_block_transfer_is_a_barrier(self):
        bus, ram, device = mini_blocks()
        device.get_plain()
        device.read_burst_block(2)
        device.get_plain()
        assert bus.accounting.elided_reads == 0


BLOCKS = """
device d (base : bit[8] port @ {0..1}) {
    register r = base @ 0 : bit[8];
    variable plain = r : int(8);
    register b = base @ 1 : bit[8];
    variable burst = b, trigger, volatile, block : int(8);
}
"""


def mini_blocks():
    spec = compile_spec(BLOCKS)
    bus = Bus()
    ram = Ram()
    bus.map_device(0x10, 4, ram)
    return bus, ram, spec.bind(bus, {"base": 0x10}, debug=False,
                               shadow_cache=True)


class TestGeneratedElision:
    """The generated stub module mirrors the interpreter's elision."""

    def _generated(self, shadow_cache=True):
        spec = compile_spec(MINI)
        source = spec.emit_python()
        namespace = {}
        exec(compile(source, "d_stubs.py", "exec"), namespace)
        (cls,) = [v for k, v in namespace.items() if k.endswith("Stubs")]
        bus = Bus()
        ram = Ram()
        bus.map_device(0x10, 4, ram)
        return bus, ram, cls(bus, 0x10, shadow_cache=shadow_cache)

    def test_second_read_is_elided(self):
        bus, ram, device = self._generated()
        assert device.get_plain() == 0x11
        assert device.get_plain() == 0x11
        assert ram.reads == 1
        assert bus.accounting.elided_reads == 1

    def test_trigger_write_invalidates(self):
        bus, ram, device = self._generated()
        device.get_plain()
        device.set_go(1)
        device.get_plain()
        assert ram.reads == 2

    def test_off_by_default(self):
        bus, ram, device = self._generated(shadow_cache=False)
        device.get_plain()
        device.get_plain()
        assert ram.reads == 2


# ---------------------------------------------------------------------------
# Transactional barriers
# ---------------------------------------------------------------------------


class TestTransactionBarriers:
    def test_trigger_rewrite_flushes_first(self, nic_machine):
        """Two writes to a write-trigger variable in one transaction
        must reach the device as two command writes — a trigger is an
        unrepeatable side effect and cannot be last-write-wins."""
        bus, nic, device = nic_machine
        before = bus.accounting.snapshot()
        with device.txn():
            device.set_rd("REMOTE_WRITE")
            device.set_rd("REMOTE_READ")
        delta = bus.accounting.delta(before)
        assert delta.writes == 2

    def test_read_inside_txn_flushes_pending(self, ide_machine):
        bus, device = ide_machine[0], ide_machine[4]
        before = bus.accounting.snapshot()
        with device.txn():
            device.set_sector_count(7)
            assert device.get_sector_count() == 7  # flushed, then read
        delta = bus.accounting.delta(before)
        assert delta.writes == 1

    def test_txn_alias(self, ide_machine):
        device = ide_machine[4]
        with device.txn():
            device.set_sector_count(3)
        assert device.get_sector_count() == 3


# ---------------------------------------------------------------------------
# Full parity: every spec, every strategy, shadow on/off, debug on/off
# ---------------------------------------------------------------------------


def _comparable(results, trace, accounting):
    return (results, trace,
            (accounting.reads, accounting.writes, accounting.block_ops,
             accounting.block_words, accounting.elided_reads,
             accounting.coalesced_writes))


class TestThreeWayParity:
    @pytest.mark.parametrize("shadow", [False, True],
                             ids=["plain", "shadow"])
    @pytest.mark.parametrize("debug", [False, True],
                             ids=["release", "debug"])
    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_workload_parity(self, name, debug, shadow):
        runs = {strategy: _comparable(*run_workload(
                    name, strategy, debug=debug, shadow_cache=shadow))
                for strategy in STRATEGIES}
        assert runs["specialize"] == runs["interpret"]
        assert runs["generated"] == runs["interpret"]

    @pytest.mark.parametrize("shadow", [False, True],
                             ids=["plain", "shadow"])
    @pytest.mark.parametrize("debug", [False, True],
                             ids=["release", "debug"])
    @pytest.mark.parametrize("name", sorted(TXN_WORKLOADS))
    def test_txn_workload_parity(self, name, debug, shadow):
        runs = {strategy: _comparable(*run_txn_workload(
                    name, strategy, debug=debug, shadow_cache=shadow))
                for strategy in STRATEGIES}
        assert runs["specialize"] == runs["interpret"]
        assert runs["generated"] == runs["interpret"]

    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_shadow_cache_only_removes_reads(self, name):
        """Cache on vs off: identical workload results; the cached run
        never performs *more* operations, and every saved operation is
        accounted as an elided read."""
        off = run_workload(name, "interpret", shadow_cache=False)
        on = run_workload(name, "interpret", shadow_cache=True)
        assert on[0] == off[0]  # results identical
        off_acc, on_acc = off[2], on[2]
        # Writes may only *decrease* (an elided indexed-register read
        # skips its ``pre {index = ...}`` write too, cs4236-style).
        assert on_acc.writes <= off_acc.writes
        assert on_acc.block_ops == off_acc.block_ops
        assert on_acc.reads + on_acc.elided_reads == off_acc.reads

    def test_cs4236_elision_skips_index_preamble(self):
        """An elided read of an index-paged codec register also elides
        the ``pre {index = N}`` page-select write: hand-written cached
        code would not touch the device at all, and neither do we."""
        off = run_workload("cs4236", "interpret", shadow_cache=False)
        on = run_workload("cs4236", "interpret", shadow_cache=True)
        assert on[2].elided_reads > 0
        assert on[2].writes < off[2].writes

    @pytest.mark.parametrize("name", sorted(TXN_WORKLOADS))
    def test_final_device_state_matches_cache_off(self, name):
        """The wire-visible outcome (simulated device model state) is
        unchanged by elision and coalescing."""
        states = {}
        for shadow in (False, True):
            bus, aux, bases = build_machine(name)
            stubs = bind_stubs(name, "interpret", bus, bases,
                               shadow_cache=shadow)
            TXN_WORKLOADS[name](stubs, aux)
            states[shadow] = _snapshot(aux)
        assert states[True] == states[False]


# ---------------------------------------------------------------------------
# Golden port-I/O counts (the CI regression gate, mirrored as a test)
# ---------------------------------------------------------------------------


GOLDEN_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "results" / "io_golden.json"
COUNTERS = ("total_ops", "reads", "writes", "block_ops",
            "elided_reads", "coalesced_writes")


class TestGoldenCounts:
    """Every workload's port-I/O profile is pinned in
    ``results/io_golden.json``; a one-operation drift in any stub is a
    failure (re-bless with ``benchmarks/check_io_golden.py --write``)."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    @pytest.mark.parametrize("shadow", [False, True],
                             ids=["plain", "shadow"])
    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_workload_counts(self, golden, name, shadow):
        expected = golden["workloads"][name][
            "shadow" if shadow else "plain"]
        accounting = run_workload(name, "interpret",
                                  shadow_cache=shadow)[2]
        actual = {c: getattr(accounting, c) for c in COUNTERS}
        assert actual == expected

    @pytest.mark.parametrize("shadow", [False, True],
                             ids=["plain", "shadow"])
    @pytest.mark.parametrize("name", sorted(TXN_WORKLOADS))
    def test_txn_workload_counts(self, golden, name, shadow):
        expected = golden["txn_workloads"][name][
            "shadow" if shadow else "plain"]
        accounting = run_txn_workload(name, "interpret",
                                      shadow_cache=shadow)[2]
        actual = {c: getattr(accounting, c) for c in COUNTERS}
        assert actual == expected

    def test_golden_covers_every_workload(self, golden):
        assert sorted(golden["workloads"]) == sorted(WORKLOADS)
        assert sorted(golden["txn_workloads"]) == sorted(TXN_WORKLOADS)


def _snapshot(value, depth=0):
    """A deep, comparable view of a simulated device model."""
    if depth > 6:
        return repr(value)
    if isinstance(value, (int, float, str, bytes, bool, type(None))):
        return value
    if isinstance(value, bytearray):
        return bytes(value)
    if isinstance(value, (list, tuple)):
        return [_snapshot(item, depth + 1) for item in value]
    if isinstance(value, dict):
        return {key: _snapshot(item, depth + 1)
                for key, item in sorted(value.items())}
    if hasattr(value, "__dict__"):
        return {key: _snapshot(item, depth + 1)
                for key, item in sorted(vars(value).items())
                if not key.startswith("_")}
    return repr(value)
