"""Tests for the performance experiments (Tables 2, 3, 4 and §4.3)."""

import pytest

from repro.perf import (
    CostModel,
    format_permedia_table,
    format_table2,
    run_ide_transfer,
    run_permedia,
    run_permedia_table,
    run_table2,
)
from repro.perf.micro import (
    debug_mode_op_counts,
    shared_register_op_count,
    single_stub_op_count,
    structure_grouping_op_count,
)


class TestCostModel:
    def test_throughput_units(self):
        cost = CostModel()
        # 1 MB in 1e6 us == 1 MB/s.
        assert cost.throughput_mb_s(1_000_000, 1_000_000) == \
            pytest.approx(1.0)

    def test_rep_cheaper_than_loop(self):
        from repro.bus import IoAccounting
        cost = CostModel()
        loop = IoAccounting(reads=256, single_by_width={16: 256})
        rep = IoAccounting(block_ops=1, block_words=256,
                           block_words_by_width={16: 256})
        assert cost.pio_time_us(rep, 0) < cost.pio_time_us(loop, 0)


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table2(total_sectors=128)

    def test_dma_parity(self, rows):
        dma = rows[0]
        assert dma.mode == "dma"
        assert dma.ratio == pytest.approx(1.0, abs=0.01)

    def test_dma_saturates_media(self, rows):
        assert rows[0].standard.throughput_mb_s == \
            pytest.approx(14.25, rel=0.02)

    def test_pio_c_loop_penalty_around_ten_percent(self, rows):
        for row in rows:
            if row.mode == "pio" and not row.devil_block:
                assert 0.85 <= row.ratio <= 0.93, row.label()

    def test_pio_block_stub_parity(self, rows):
        for row in rows:
            if row.mode == "pio" and row.devil_block:
                assert row.ratio >= 0.98, row.label()

    def test_throughput_ordering_matches_paper(self, rows):
        """32-bit beats 16-bit; more sectors/irq beats fewer."""
        def throughput(sectors_per_irq, width):
            for row in rows:
                if (row.mode, row.sectors_per_irq, row.io_width,
                        row.devil_block) == ("pio", sectors_per_irq,
                                             width, False):
                    return row.standard.throughput_mb_s
            raise LookupError
        assert throughput(16, 32) > throughput(16, 16)
        assert throughput(16, 32) > throughput(1, 32)
        assert throughput(1, 32) > throughput(1, 16)

    def test_absolute_throughputs_near_paper(self, rows):
        """Spot checks against Table 2's MB/s values (±10 %)."""
        expectations = {
            ("pio", 16, 32): 8.17,
            ("pio", 16, 16): 4.45,
            ("pio", 1, 32): 6.93,
            ("pio", 1, 16): 4.06,
        }
        for row in rows:
            key = (row.mode, row.sectors_per_irq, row.io_width)
            if key in expectations and not row.devil_block:
                assert row.standard.throughput_mb_s == pytest.approx(
                    expectations[key], rel=0.10), row.label()

    def test_io_operation_formulas(self):
        """Standard: 7 + irqs; Devil: 10 + 3*irqs (data via rep)."""
        standard = run_ide_transfer("standard", "pio", 1, 16,
                                    total_sectors=64)
        assert standard.io_operations == 7 + 64 * 1 + 64  # + block ops
        devil = run_ide_transfer("devil", "pio", 1, 16,
                                 total_sectors=64, use_block=True)
        assert devil.io_operations == 10 + 64 * 3 + 64

    def test_data_transactions_match_paper_counts(self):
        """256 16-bit or 128 32-bit data transactions per sector."""
        for width, per_sector in ((16, 256), (32, 128)):
            result = run_ide_transfer("standard", "pio", 1, width,
                                      total_sectors=16)
            data = result.bus_transactions - result.io_operations + \
                result.total_bytes // (512 * per_sector) * 0
            assert result.bus_transactions >= 16 * per_sector

    def test_corruption_guard(self):
        result = run_ide_transfer("devil", "pio", 8, 16,
                                  total_sectors=32, use_block=False)
        assert result.total_bytes == 32 * 512

    def test_format_table2(self):
        rendered = format_table2(run_table2(total_sectors=32))
        assert "DMA" in rendered and "block stubs" in rendered


class TestTables3And4:
    def test_fill_ratios(self):
        rows = run_permedia_table("fill", batch=16)
        for row in rows:
            assert 0.94 <= row.ratio <= 1.01
            if row.size >= 100:
                assert row.ratio >= 0.99

    def test_copy_ratios(self):
        rows = run_permedia_table("copy", batch=16)
        for row in rows:
            assert 0.94 <= row.ratio <= 1.01

    def test_devil_two_extra_writes(self):
        standard = run_permedia("standard", "fill", 8, 10, batch=8)
        devil = run_permedia("devil", "fill", 8, 10, batch=8)
        assert devil.io_writes - standard.io_writes == 2 * 8

    def test_throughput_falls_with_size_and_depth(self):
        small = run_permedia("standard", "fill", 8, 2, batch=8)
        large = run_permedia("standard", "fill", 8, 400, batch=8)
        deep = run_permedia("standard", "fill", 32, 400, batch=8)
        assert small.per_second > large.per_second > deep.per_second

    def test_fill_magnitudes_near_paper(self):
        """Paper: ~985k rect/s at 8bpp 2x2, ~3.8k at 400x400."""
        tiny = run_permedia("standard", "fill", 8, 2, batch=8)
        big = run_permedia("standard", "fill", 8, 400, batch=8)
        assert 500_000 < tiny.per_second < 2_000_000
        assert 2_000 < big.per_second < 8_000

    def test_pixel_accounting(self):
        result = run_permedia("standard", "fill", 16, 10, batch=4)
        assert result.pixels == 4 * 100
        assert result.bytes_touched == 4 * 100 * 2

    def test_format_table(self):
        rendered = format_permedia_table(
            run_permedia_table("fill", batch=4, depths=(8,), sizes=(2,)))
        assert "Ratio" in rendered


class TestMicroAnalysis:
    def test_single_stub_no_overhead(self):
        count = single_stub_op_count()
        assert count.overhead == 0

    def test_shared_register_penalty(self):
        count = shared_register_op_count()
        assert count.hand_written == 1
        assert count.devil == 3

    def test_structure_grouping_saves_io(self):
        grouped, ungrouped = structure_grouping_op_count()
        assert grouped < ungrouped
        assert grouped == 8   # Figure 3c: 4 index writes + 4 reads

    def test_debug_mode_same_io(self):
        release, debug = debug_mode_op_counts()
        assert release == debug
