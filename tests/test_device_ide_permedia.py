"""Behavioural tests for the IDE/PIIX4 and Permedia2 models."""

import numpy as np
import pytest

from repro.bus import BusError
from repro.devices.ide import (
    CMD_READ_DMA,
    CMD_READ_MULTIPLE,
    CMD_READ_SECTORS,
    CMD_SET_MULTIPLE,
    CMD_WRITE_SECTORS,
    DRQ,
    ERR,
    IdeControlPort,
    IdeDiskModel,
    SECTOR_SIZE,
)
from repro.devices.permedia2 import (
    FIFO_DEPTH,
    Permedia2Aperture,
    Permedia2Model,
)
from repro.devices.piix4 import Piix4Model


def make_disk(sectors=32):
    disk = IdeDiskModel(total_sectors=sectors)
    for index in range(len(disk.store)):
        disk.store[index] = (index * 7 + index // SECTOR_SIZE) & 0xFF
    return disk


def issue(disk, command, lba=0, count=1):
    disk.io_write(2, count, 8)
    disk.io_write(3, lba & 0xFF, 8)
    disk.io_write(4, (lba >> 8) & 0xFF, 8)
    disk.io_write(5, (lba >> 16) & 0xFF, 8)
    disk.io_write(6, 0xE0 | ((lba >> 24) & 0xF), 8)
    disk.io_write(7, command, 8)


def drain_words(disk, words, width=16):
    return [disk.io_read(0, width) for _ in range(words)]


class TestIdePio:
    def test_read_one_sector(self):
        disk = make_disk()
        issue(disk, CMD_READ_SECTORS, lba=2, count=1)
        assert disk.status & DRQ
        assert disk.interrupts_raised == 1
        words = drain_words(disk, 256)
        expected = disk.store[2 * SECTOR_SIZE:3 * SECTOR_SIZE]
        got = b"".join(w.to_bytes(2, "little") for w in words)
        assert got == bytes(expected)
        assert not disk.status & DRQ

    def test_read_interrupt_per_sector(self):
        disk = make_disk()
        issue(disk, CMD_READ_SECTORS, lba=0, count=3)
        for _ in range(3):
            drain_words(disk, 256)
        assert disk.interrupts_raised == 3

    def test_read_multiple_interrupt_per_block(self):
        disk = make_disk()
        issue(disk, CMD_SET_MULTIPLE, count=4)
        issue(disk, CMD_READ_MULTIPLE, lba=0, count=8)
        drain_words(disk, 256 * 8)
        assert disk.interrupts_raised == 2

    def test_32bit_data_access(self):
        disk = make_disk()
        issue(disk, CMD_READ_SECTORS, lba=1, count=1)
        values = drain_words(disk, 128, width=32)
        got = b"".join(v.to_bytes(4, "little") for v in values)
        assert got == bytes(disk.store[SECTOR_SIZE:2 * SECTOR_SIZE])

    def test_write_sector(self):
        disk = make_disk()
        issue(disk, CMD_WRITE_SECTORS, lba=4, count=1)
        assert disk.interrupts_raised == 0  # first write DRQ silent
        payload = bytes((i * 3) & 0xFF for i in range(SECTOR_SIZE))
        for i in range(0, SECTOR_SIZE, 2):
            word = payload[i] | (payload[i + 1] << 8)
            disk.io_write(0, word, 16)
        assert disk.store[4 * SECTOR_SIZE:5 * SECTOR_SIZE] == payload
        assert disk.interrupts_raised == 1

    def test_data_read_without_drq(self):
        with pytest.raises(BusError):
            make_disk().io_read(0, 16)

    def test_beyond_end_of_disk(self):
        disk = make_disk(sectors=4)
        with pytest.raises(BusError):
            issue(disk, CMD_READ_SECTORS, lba=3, count=2)
        assert disk.status & ERR

    def test_unknown_command_aborts(self):
        disk = make_disk()
        issue(disk, 0xFF)
        assert disk.status & ERR
        assert disk.error == 0x04

    def test_status_read_acks_interrupt(self):
        disk = make_disk()
        issue(disk, CMD_READ_SECTORS, count=1)
        assert disk.irq_pending
        disk.io_read(7, 8)
        assert not disk.irq_pending

    def test_alternate_status_does_not_ack(self):
        disk = make_disk()
        port = IdeControlPort(disk)
        issue(disk, CMD_READ_SECTORS, count=1)
        port.io_read(0, 8)
        assert disk.irq_pending

    def test_soft_reset(self):
        disk = make_disk()
        issue(disk, CMD_READ_SECTORS, count=1)
        IdeControlPort(disk).io_write(0, 0b100, 8)
        assert not disk.status & DRQ

    def test_identify_block(self):
        disk = make_disk()
        disk.io_write(7, 0xEC, 8)
        words = drain_words(disk, 256)
        blob = b"".join(w.to_bytes(2, "little") for w in words)
        assert b"EDIVL" in blob or b"DEVIL" in bytes(
            blob[54 + i] for i in (1, 0, 3, 2, 5, 4))
        assert words[60] | (words[61] << 16) == disk.total_sectors


class TestPiix4Dma:
    def _machine(self):
        disk = make_disk()
        memory = bytearray(1 << 16)
        busmaster = Piix4Model(disk, memory)
        return disk, memory, busmaster

    def _prd(self, memory, prd_at, address, count, last=True):
        memory[prd_at:prd_at + 4] = address.to_bytes(4, "little")
        memory[prd_at + 4:prd_at + 6] = (count & 0xFFFF).to_bytes(
            2, "little")
        flags = 0x8000 if last else 0
        memory[prd_at + 6:prd_at + 8] = flags.to_bytes(2, "little")

    def test_read_dma_single_prd(self):
        disk, memory, busmaster = self._machine()
        self._prd(memory, 0x8000, 0x1000, 2 * SECTOR_SIZE)
        issue(disk, CMD_READ_DMA, lba=1, count=2)
        busmaster.io_write(4, 0x8000, 32)
        busmaster.io_write(0, 0x09, 8)  # start, to memory
        assert memory[0x1000:0x1000 + 2 * SECTOR_SIZE] == \
            disk.store[SECTOR_SIZE:3 * SECTOR_SIZE]
        assert busmaster.io_read(2, 8) & 0b100  # irq bit
        assert disk.interrupts_raised == 1

    def test_scattered_prd_table(self):
        disk, memory, busmaster = self._machine()
        self._prd(memory, 0x8000, 0x1000, SECTOR_SIZE, last=False)
        self._prd(memory, 0x8008, 0x4000, SECTOR_SIZE, last=True)
        issue(disk, CMD_READ_DMA, lba=0, count=2)
        busmaster.io_write(4, 0x8000, 32)
        busmaster.io_write(0, 0x09, 8)
        assert memory[0x1000:0x1000 + SECTOR_SIZE] == \
            disk.store[0:SECTOR_SIZE]
        assert memory[0x4000:0x4000 + SECTOR_SIZE] == \
            disk.store[SECTOR_SIZE:2 * SECTOR_SIZE]

    def test_direction_mismatch_sets_error(self):
        disk, memory, busmaster = self._machine()
        self._prd(memory, 0x8000, 0x1000, SECTOR_SIZE)
        issue(disk, CMD_READ_DMA, lba=0, count=1)
        busmaster.io_write(4, 0x8000, 32)
        busmaster.io_write(0, 0x01, 8)  # start, wrong direction
        assert busmaster.io_read(2, 8) & 0b010

    def test_start_without_request_sets_error(self):
        _, _, busmaster = self._machine()
        busmaster.io_write(0, 0x09, 8)
        assert busmaster.io_read(2, 8) & 0b010

    def test_status_write_one_to_clear(self):
        disk, memory, busmaster = self._machine()
        self._prd(memory, 0x8000, 0x1000, SECTOR_SIZE)
        issue(disk, CMD_READ_DMA, lba=0, count=1)
        busmaster.io_write(4, 0x8000, 32)
        busmaster.io_write(0, 0x09, 8)
        busmaster.io_write(2, 0b110, 8)
        assert busmaster.io_read(2, 8) & 0b110 == 0


class TestPermedia2:
    def _gpu(self):
        return Permedia2Model(width=64, height=48, drain_per_poll=32)

    def test_fill_rect(self):
        gpu = self._gpu()
        gpu.io_write(1, 0xAB, 32)          # color
        gpu.io_write(2, (4 << 16) | 2, 32)  # origin x=2 y=4
        gpu.io_write(3, (3 << 16) | 5, 32)  # size 5x3
        gpu.io_write(5, 0b01, 32)           # render fill
        assert gpu.framebuffer[4, 2] == 0xAB
        assert gpu.framebuffer[6, 6] == 0xAB
        assert gpu.framebuffer[7, 2] == 0
        assert gpu.pixels_filled == 15

    def test_copy_rect(self):
        gpu = self._gpu()
        gpu.framebuffer[10:12, 20:22] = 7
        gpu.io_write(4, (0 << 16) | ((20 - 5) & 0xFFFF), 32)  # dx=15
        gpu.io_write(2, (10 << 16) | 5, 32)
        gpu.io_write(3, (2 << 16) | 2, 32)
        gpu.io_write(5, 0b10, 32)
        assert np.all(gpu.framebuffer[10:12, 5:7] == 7)

    def test_scissor_clips(self):
        gpu = self._gpu()
        gpu.io_write(8, 0, 32)
        gpu.io_write(9, (10 << 16) | 10, 32)
        gpu.io_write(1, 5, 32)
        gpu.io_write(2, 0, 32)
        gpu.io_write(3, (20 << 16) | 20, 32)
        gpu.io_write(5, 0b01, 32)
        assert gpu.pixels_filled == 100

    def test_fifo_space_drains(self):
        gpu = Permedia2Model(width=64, height=48, drain_per_poll=4)
        for _ in range(10):
            gpu.io_write(1, 0, 32)
        first = gpu.io_read(0, 32)
        second = gpu.io_read(0, 32)
        assert first == FIFO_DEPTH - 6
        assert second == FIFO_DEPTH - 2

    def test_fifo_overflow_counted(self):
        gpu = Permedia2Model(width=64, height=48, drain_per_poll=0)
        for _ in range(FIFO_DEPTH + 3):
            gpu.io_write(1, 0, 32)
        assert gpu.fifo_overflows == 3

    def test_bytes_touched_scales_with_depth(self):
        gpu = self._gpu()
        gpu.io_write(7, 0b11, 32)  # 32 bpp
        gpu.io_write(2, 0, 32)
        gpu.io_write(3, (2 << 16) | 2, 32)
        gpu.io_write(5, 0b01, 32)
        assert gpu.bytes_touched == 16

    def test_aperture_autoincrement(self):
        gpu = self._gpu()
        aperture = Permedia2Aperture(gpu)
        gpu.io_write(13, 64, 32)  # start of row 1
        aperture.io_write(0, 11, 32)
        aperture.io_write(0, 22, 32)
        assert gpu.framebuffer[1, 0] == 11
        assert gpu.framebuffer[1, 1] == 22

    def test_aperture_out_of_range(self):
        gpu = self._gpu()
        gpu.io_write(13, 64 * 48, 32)
        with pytest.raises(BusError):
            Permedia2Aperture(gpu).io_read(0, 32)

    def test_copy_source_out_of_bounds(self):
        gpu = self._gpu()
        gpu.io_write(4, 60, 32)  # dx too far right
        gpu.io_write(2, 10, 32)
        gpu.io_write(3, (2 << 16) | 10, 32)
        with pytest.raises(BusError):
            gpu.io_write(5, 0b10, 32)

    def test_only_32bit_accesses(self):
        with pytest.raises(BusError):
            self._gpu().io_read(0, 8)
