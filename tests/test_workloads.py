"""Randomized long-run workloads: both driver flavours, lock-step.

Each scenario builds two identical machines, drives one with the
hand-written driver and one with the Devil driver, interleaves hundreds
of seeded-random operations, and asserts after every step that the two
worlds agree — decoded events, transferred data, device state.  This is
the system-level counterpart of the per-operation driver tests.
"""

import random

import pytest

from repro.bus import Bus
from repro.devices.busmouse import REGION_SIZE as MOUSE_REGION
from repro.devices.busmouse import BusmouseModel
from repro.devices.ide import REGION_SIZE as IDE_REGION
from repro.devices.ide import IdeControlPort, IdeDiskModel, SECTOR_SIZE
from repro.devices.ne2000 import REGION_SIZE as NE_REGION
from repro.devices.ne2000 import (
    Ne2000DataPort,
    Ne2000Model,
    Ne2000ResetPort,
)
from repro.devices.piix4 import Piix4Model
from repro.drivers import (
    CStyleBusmouseDriver,
    CStyleIdeDriver,
    CStyleNe2000Driver,
    DevilBusmouseDriver,
    DevilIdeDriver,
    DevilNe2000Driver,
)


class TestMouseMarathon:
    @pytest.mark.parametrize("seed", [7, 99, 2024])
    def test_three_hundred_events(self, seed):
        machines = []
        for driver_cls in (CStyleBusmouseDriver, DevilBusmouseDriver):
            bus = Bus()
            mouse = BusmouseModel()
            bus.map_device(0x23C, MOUSE_REGION, mouse, "busmouse")
            driver = driver_cls(bus, 0x23C)
            assert driver.probe()
            driver.enable_interrupts()
            machines.append((bus, mouse, driver))

        rng = random.Random(seed)
        for _ in range(300):
            dx = rng.randint(-128, 127)
            dy = rng.randint(-128, 127)
            buttons = rng.randrange(8)
            events = []
            for bus, mouse, driver in machines:
                mouse.move(dx, dy)
                mouse.set_buttons(buttons)
                events.append(driver.read_event())
            assert events[0] == events[1] == (dx, dy, buttons)
        # Identical total I/O (the event loop is op-for-op equal).
        assert machines[0][0].accounting.total_ops == \
            machines[1][0].accounting.total_ops


class TestDiskMarathon:
    @pytest.mark.parametrize("seed", [1, 42])
    def test_mixed_pio_dma_traffic(self, seed):
        rng = random.Random(seed)
        golden = bytes(rng.randrange(256)
                       for _ in range(64 * SECTOR_SIZE))
        machines = []
        for driver_cls in (CStyleIdeDriver, DevilIdeDriver):
            bus = Bus()
            disk = IdeDiskModel(total_sectors=64)
            disk.store[:] = golden
            bus.map_device(0x1F0, IDE_REGION, disk, "ide")
            bus.map_device(0x3F6, 1, IdeControlPort(disk), "ide-ctrl")
            memory = bytearray(1 << 17)
            bus.map_device(0xC000, 8, Piix4Model(disk, memory), "piix4")
            driver = driver_cls(bus)
            driver.set_multiple(8)
            machines.append((disk, memory, driver))

        shadow = bytearray(golden)
        operations = rng.choices(
            ["pio_read", "pio_write", "dma_read", "dma_write"], k=60)
        for op_index, operation in enumerate(operations):
            lba = rng.randrange(0, 56)
            count = rng.randint(1, 8)
            payload = bytes((op_index + i) & 0xFF
                            for i in range(count * SECTOR_SIZE))
            outputs = []
            for disk, memory, driver in machines:
                if operation == "pio_read":
                    outputs.append(driver.read_sectors(
                        lba, count, sectors_per_irq=8))
                elif operation == "pio_write":
                    driver.write_sectors(lba, payload, sectors_per_irq=8)
                    outputs.append(payload)
                elif operation == "dma_read":
                    outputs.append(driver.read_dma(
                        memory, lba, count, buffer_address=0x10000))
                else:
                    driver.write_dma(memory, lba, payload,
                                     buffer_address=0x10000)
                    outputs.append(payload)
            assert outputs[0] == outputs[1]
            if operation.endswith("read"):
                expected = bytes(
                    shadow[lba * SECTOR_SIZE:
                           (lba + count) * SECTOR_SIZE])
                assert outputs[0] == expected
            else:
                shadow[lba * SECTOR_SIZE:
                       (lba + count) * SECTOR_SIZE] = payload
        # Both disks hold the same final image as the shadow.
        assert bytes(machines[0][0].store) == bytes(shadow)
        assert bytes(machines[1][0].store) == bytes(shadow)

    def test_interrupt_counts_track_block_size(self):
        for sectors_per_irq in (1, 4, 16):
            bus = Bus()
            disk = IdeDiskModel(total_sectors=64)
            bus.map_device(0x1F0, IDE_REGION, disk, "ide")
            bus.map_device(0x3F6, 1, IdeControlPort(disk), "ide-ctrl")
            driver = DevilIdeDriver(bus)
            if sectors_per_irq > 1:
                driver.set_multiple(sectors_per_irq)
            before = disk.interrupts_raised
            driver.read_sectors(0, 48, sectors_per_irq=sectors_per_irq)
            raised = disk.interrupts_raised - before
            assert raised == -(-48 // sectors_per_irq)


class TestNicMarathon:
    MAC = b"\x02\x00\x00\x00\x00\x01"

    @pytest.mark.parametrize("seed", [5, 77])
    def test_traffic_storm(self, seed):
        rng = random.Random(seed)
        machines = []
        for driver_cls in (CStyleNe2000Driver, DevilNe2000Driver):
            bus = Bus()
            nic = Ne2000Model()
            bus.map_device(0x300, NE_REGION, nic, "ne2000")
            bus.map_device(0x310, 2, Ne2000DataPort(nic), "data")
            bus.map_device(0x31F, 1, Ne2000ResetPort(nic), "reset")
            driver = driver_cls(bus)
            driver.reset()
            driver.init(self.MAC)
            machines.append((nic, driver))

        pending: list[bytes] = []
        sent: list[bytes] = []
        for step in range(120):
            action = rng.choice(["tx", "rx", "rx", "poll"])
            if action == "tx":
                frame = bytes(rng.randrange(256)
                              for _ in range(rng.randint(60, 600)))
                for _, driver in machines:
                    driver.send_frame(frame)
                sent.append(frame)
            elif action == "rx":
                frame = bytes(rng.randrange(256)
                              for _ in range(rng.randint(60, 900)))
                delivered = [nic.receive_frame(frame)
                             for nic, _ in machines]
                assert delivered[0] == delivered[1]
                if delivered[0]:
                    pending.append(frame)
            else:
                received = [driver.poll_receive()
                            for _, driver in machines]
                assert received[0] == received[1]
                for index, frame in enumerate(received[0]):
                    original = pending[index]
                    assert frame[:len(original)] == original
                pending = pending[len(received[0]):]
        # Drain what's left and compare transmissions.
        received = [driver.poll_receive() for _, driver in machines]
        assert received[0] == received[1]
        assert machines[0][0].transmitted == machines[1][0].transmitted \
            == sent
