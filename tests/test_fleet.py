"""Concurrency stress suite for the fleet engine.

Three layers of invariants, bottom-up:

* the **thread-safe bus** loses no counter updates and never tears a
  trace (per-device program order, contiguous block groups);
* the **memoized derivation caches** (model, specializer, spec
  compiler) survive N simultaneous first calls;
* the **fleet** produces *exactly* the accounting and device state of
  a single-worker run — not approximately: the schedules are
  deterministic, so every counter must match to the unit — and the
  final state is identical under all three execution strategies.
"""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.bus import Bus, ThreadSafeBus
from repro.engine import (
    Fleet,
    WorkerError,
    WorkerPool,
    fleet_fingerprint,
    ide_sector_read,
    mixed_schedule,
    run_stress,
)
from repro.obs.workloads import STRATEGIES, WORKLOADS, build_machine
from repro.specs import SPEC_NAMES

pytestmark = pytest.mark.concurrency


class _Scratch:
    """A trivial mapped device: a byte per port, no side effects."""

    def __init__(self, size=16):
        self.cells = bytearray(size)

    def io_read(self, offset, width):
        return self.cells[offset]

    def io_write(self, offset, value, width):
        self.cells[offset] = value & 0xFF


def _hammer(threads, fn):
    """Run ``fn(index)`` on N threads at once; re-raise any failure."""
    errors = []

    def runner(index):
        try:
            fn(index)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    workers = [threading.Thread(target=runner, args=(i,))
               for i in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    if errors:
        raise errors[0]


# ---------------------------------------------------------------------------
# Layer 1: the bus
# ---------------------------------------------------------------------------


def test_threadsafe_bus_exact_counters_under_contention():
    """8 threads × 2000 ops on a shared device: no lost updates."""
    bus = ThreadSafeBus()
    bus.map_device(0x100, 16, _Scratch(), "scratch")
    threads, ops = 8, 2000

    def worker(index):
        for i in range(ops):
            bus.write(i & 0xFF, 0x100 + (i % 16))
            bus.read(0x100 + (i % 16))
        bus.block_write(0x104, [1, 2, 3, 4])
        bus.block_read(0x104, 4)

    _hammer(threads, worker)
    merged = bus.accounting
    assert merged.reads == threads * ops
    assert merged.writes == threads * ops
    assert merged.block_ops == threads * 2
    assert merged.block_words == threads * 8
    assert merged.total_ops == threads * (2 * ops + 2)
    per_device = bus.accounting_by_device()
    assert per_device["scratch"].total_ops == merged.total_ops


def test_threadsafe_bus_per_device_shards_are_independent():
    """Contention on one device never bleeds into another's counters."""
    bus = ThreadSafeBus()
    bus.map_device(0x100, 16, _Scratch(), "left")
    bus.map_device(0x200, 16, _Scratch(), "right")

    def worker(index):
        base = 0x100 if index % 2 == 0 else 0x200
        for _ in range(500):
            bus.write(0xAB, base)

    _hammer(4, worker)
    per_device = bus.accounting_by_device()
    assert per_device["left"].writes == 1000
    assert per_device["right"].writes == 1000
    assert bus.accounting.writes == 2000


def test_threadsafe_bus_trace_keeps_block_groups_contiguous():
    """Concurrent block writes: each N-word group stays adjacent."""
    bus = ThreadSafeBus(tracing=True)
    bus.map_device(0x100, 16, _Scratch(), "left")
    bus.map_device(0x200, 16, _Scratch(), "right")
    words = 8

    def worker(index):
        base = 0x100 if index % 2 == 0 else 0x200
        for _ in range(50):
            bus.block_write(base, list(range(words)))

    _hammer(4, worker)
    trace = list(bus.trace)
    assert len(trace) == 4 * 50 * words
    # Walk the trace in block-sized strides: every group must be one
    # device's one block, in word order — interleaving would split it.
    for start in range(0, len(trace), words):
        group = trace[start:start + words]
        ports = {entry.port for entry in group}
        assert len(ports) == 1, f"torn block group at {start}: {group}"
        assert [entry.value for entry in group] == list(range(words))


def test_threadsafe_bus_trace_ring_drops_are_counted_exactly():
    """Bounded ring under concurrent writers: len + dropped == written."""
    bus = ThreadSafeBus(tracing=True, trace_limit=64)
    bus.map_device(0x100, 16, _Scratch(), "scratch")

    def worker(index):
        for i in range(1000):
            bus.write(i & 0xFF, 0x100)

    _hammer(4, worker)
    assert len(bus.trace) == 64
    assert bus.trace_dropped == 4 * 1000 - 64


def test_single_threaded_accounting_matches_base_bus():
    """ThreadSafeBus is observationally identical to Bus when serial."""
    results = []
    for cls in (Bus, ThreadSafeBus):
        bus = cls(tracing=True)
        bus.map_device(0x100, 16, _Scratch(), "scratch")
        bus.write(1, 0x100)
        bus.read(0x101)
        bus.block_write(0x102, [5, 6])
        bus.block_read(0x102, 2)
        results.append((bus.accounting.snapshot(), list(bus.trace)))
    base, safe = results
    assert base[0] == safe[0]
    assert base[1] == safe[1]


# ---------------------------------------------------------------------------
# Layer 2: memoized derivation caches
# ---------------------------------------------------------------------------


def test_concurrent_first_binds_all_specs_all_strategies():
    """16 threads bind every spec under every strategy at once.

    Exercises the double-checked caches in ``repro.specs`` (compile),
    ``repro.devil.model`` (chunk/width/owner derivations),
    ``repro.devil.specialize`` (closure factories) and
    ``repro.obs.workloads`` (generated-module exec) on cold and warm
    paths together, then proves each bind still drives its workload.
    """
    jobs = [(name, strategy)
            for name in SPEC_NAMES for strategy in STRATEGIES]

    def worker(index):
        name, strategy = jobs[index % len(jobs)]
        bus, aux, bases = build_machine(name, tracing=False)
        from repro.obs.workloads import bind_stubs
        stubs = bind_stubs(name, strategy, bus, bases)
        WORKLOADS[name](stubs, aux)
        assert bus.accounting.total_ops > 0

    _hammer(16, worker)


# ---------------------------------------------------------------------------
# Layer 3: the fleet
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("spec", SPEC_NAMES)
def test_fleet_exactness_per_spec(spec):
    """4 threads × 12 shipped-workload requests on a 2-device fleet:
    accounting and final state equal the single-worker reference."""
    schedule = [(spec, WORKLOADS[spec])] * 12
    run_stress([spec, spec], schedule, workers=4)


def test_fleet_three_strategy_state_parity():
    """The mixed fleet ends in the same device state under interpret,
    specialize and generated execution."""
    schedule = mixed_schedule(6)
    fingerprints = {}
    for strategy in STRATEGIES:
        with Fleet(["ide", "permedia2", "ne2000"], strategy=strategy,
                   workers=4) as fleet:
            fleet.run(schedule)
            fingerprints[strategy] = fleet_fingerprint(fleet)
    assert fingerprints["interpret"] == fingerprints["specialize"]
    assert fingerprints["interpret"] == fingerprints["generated"]


@pytest.mark.slow
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_single_device_eight_thread_stress(strategy):
    """ISSUE acceptance: 8 threads against ONE device, 100 consecutive
    iterations, each with exact accounting and state parity.

    The serial reference is computed once and reused — the parallel leg
    re-runs every iteration, so a single torn update in any iteration
    fails the run.
    """
    schedule = [("ide", ide_sector_read)] * 16
    reference = None
    for _ in range(100):
        reference = run_stress(["ide"], schedule, workers=8,
                               strategy=strategy, reference=reference)


def test_fleet_least_loaded_completes_everything():
    with Fleet(["ide", "ide", "permedia2", "ne2000"],
               policy="least-loaded", workers=4) as fleet:
        fleet.run(mixed_schedule(8))
        assert fleet.completed() == 24
        assert fleet.accounting.total_ops > 0


def test_fleet_unknown_spec_and_policy_fail_loudly():
    with pytest.raises(ValueError):
        Fleet(["ide"], policy="psychic")
    with Fleet(["ide"], workers=1) as fleet:
        with pytest.raises(KeyError):
            fleet.submit("permedia2", lambda stubs, aux: None)


def test_worker_pool_surfaces_request_errors():
    def boom():
        raise RuntimeError("request exploded")

    pool = WorkerPool(workers=2)
    for _ in range(3):
        pool.submit(boom)
    with pytest.raises(WorkerError) as info:
        pool.drain()
    assert len(info.value.failures) == 3
    pool.shutdown()


def test_fleet_propagates_request_errors():
    def bad_request(stubs, aux):
        raise RuntimeError("driver bug")

    with pytest.raises(WorkerError):
        with Fleet(["ide"], workers=2) as fleet:
            fleet.submit("ide", bad_request)
            fleet.drain()


# ---------------------------------------------------------------------------
# Telemetry under parallelism
# ---------------------------------------------------------------------------


def test_collector_merges_spans_across_workers():
    """Spans recorded by parallel fleet workers merge losslessly."""
    schedule = mixed_schedule(8)
    with obs.observe() as collector:
        with Fleet(["ide", "permedia2", "ne2000"], workers=4,
                   tracing=True) as fleet:
            fleet.bus.collector = collector
            fleet.run(schedule)
    spans = collector.spans
    assert spans, "instrumented fleet produced no spans"
    sequence = [span.seq for span in spans]
    assert sequence == sorted(sequence)
    assert len(set(sequence)) == len(sequence), "duplicate span seq"
    # Every span belongs to exactly one worker's thread of execution
    # and attributed I/O must equal the bus's merged totals.
    calls = collector.metrics.find("dev.calls")
    assert sum(counter.value for counter in calls) == len(spans)
