"""Unit tests for the stub runtime (DeviceInstance semantics)."""

import pytest

from repro.bus import Bus
from repro.devil.compiler import compile_spec
from repro.devil.errors import DevilRuntimeError


class RamDevice:
    """A trivial device: bytes at offsets, recording every access."""

    def __init__(self, size=8):
        self.cells = [0] * size
        self.log = []

    def io_read(self, offset, width):
        self.log.append(("r", offset))
        value = 0
        for i in range(width // 8):
            value |= self.cells[offset + i] << (8 * i)
        return value

    def io_write(self, offset, value, width):
        self.log.append(("w", offset, value))
        for i in range(width // 8):
            self.cells[offset + i] = (value >> (8 * i)) & 0xFF


def bind(source, size=8, debug=True):
    spec = compile_spec(source)
    bus = Bus()
    device = RamDevice(size)
    bus.map_device(0x100, size, device, "ram")
    instance = spec.bind(bus, {"base": 0x100}, debug=debug)
    return bus, device, instance


SIMPLE = """
device d (base : bit[8] port @ {0}) {
    register r = base @ 0 : bit[8];
    variable v = r : int(8);
}
"""


class TestBasicAccess:
    def test_write_then_read(self):
        _, device, instance = bind(SIMPLE, 1)
        instance.set_v(0x5A)
        assert device.cells[0] == 0x5A
        assert instance.get_v() == 0x5A

    def test_generic_api_matches_stubs(self):
        _, _, instance = bind(SIMPLE, 1)
        instance.set("v", 7)
        assert instance.get("v") == 7

    def test_unknown_variable(self):
        _, _, instance = bind(SIMPLE, 1)
        with pytest.raises(DevilRuntimeError):
            instance.get("nope")

    def test_missing_base_address(self):
        spec = compile_spec(SIMPLE)
        with pytest.raises(DevilRuntimeError):
            spec.bind(Bus(), {})


MASKED = """
device d (base : bit[8] port @ {0}) {
    register r = write base @ 0, mask '1001000.' : bit[8];
    variable v = r[0] : { ON => '1', OFF => '0' };
}
"""


class TestMaskingAndEnums:
    def test_forced_bits_in_write(self):
        _, device, instance = bind(MASKED, 1)
        instance.set_v("ON")
        assert device.cells[0] == 0x91
        instance.set_v("OFF")
        assert device.cells[0] == 0x90

    def test_write_only_variable_has_no_getter(self):
        _, _, instance = bind(MASKED, 1)
        assert not hasattr(instance, "get_v")

    def test_bad_symbol_raises(self):
        _, _, instance = bind(MASKED, 1)
        with pytest.raises(DevilRuntimeError):
            instance.set_v("BANANA")


SHARED = """
device d (base : bit[8] port @ {0}) {
    register r = base @ 0 : bit[8];
    variable lo = r[3..0] : int(4);
    variable hi = r[7..4] : int(4);
}
"""


class TestSharedRegisterComposition:
    def test_cached_neighbour_bits_preserved(self):
        _, device, instance = bind(SHARED, 1)
        instance.set_lo(0xA)
        instance.set_hi(0x5)
        assert device.cells[0] == 0x5A
        instance.set_lo(0x3)
        assert device.cells[0] == 0x53

    def test_read_refreshes_cache(self):
        _, device, instance = bind(SHARED, 1)
        device.cells[0] = 0x42
        assert instance.get_hi() == 0x4
        instance.set_lo(0xF)
        # hi bits must come from the cache refreshed by the read.
        assert device.cells[0] == 0x4F


TRIGGER = """
device d (base : bit[8] port @ {0}) {
    register cmd = base @ 0 : bit[8];
    variable go = cmd[1..0], write trigger except NOP :
        { NOP <=> '00', START <=> '01', STOP <=> '10', HALT <= '11' };
    variable param = cmd[7..2] : int(6);
}
"""


class TestTriggerNeutrality:
    def test_neighbour_write_uses_neutral(self):
        _, device, instance = bind(TRIGGER, 1)
        instance.set_go("START")
        assert device.cells[0] & 0b11 == 0b01
        instance.set_param(0x3F)
        # Writing param must compose the trigger's neutral value, not
        # replay START.
        assert device.cells[0] == (0x3F << 2) | 0b00


SIGNED_CONCAT = """
device d (base : bit[8] port @ {0..1}) {
    register lo = base @ 0 : bit[8];
    register hi = base @ 1 : bit[8];
    variable both = hi[3..0] # lo[3..0], volatile : signed int(8);
    variable rest_lo = lo[7..4] : int(4);
    variable rest_hi = hi[7..4] : int(4);
}
"""


class TestConcatenation:
    def test_msb_first_assembly(self):
        _, device, instance = bind(SIGNED_CONCAT, 2)
        device.cells[0] = 0x0D  # low nibble
        device.cells[1] = 0x0F  # high nibble
        assert instance.get_both() == instance.model.variables[
            "both"].type.decode(0xFD)
        assert instance.get_both() == -3

    def test_write_scatters_chunks(self):
        _, device, instance = bind(SIGNED_CONCAT, 2)
        instance.set_both(-3)  # 0xFD
        assert device.cells[0] & 0x0F == 0x0D
        assert device.cells[1] & 0x0F == 0x0F


SERIALIZED = """
device d (base : bit[8] port @ {0..2}) {
    register ff = write base @ 2 : bit[8];
    private variable flip = ff, write trigger : int(8);
    register lo = base @ 0, pre {flip = *} : bit[8];
    register hi = base @ 1 : bit[8];
    variable x = hi # lo : int(16) serialized as { lo; hi };
}
"""


class TestSerializationAndPreActions:
    def test_write_order_follows_serialization(self):
        _, device, instance = bind(SERIALIZED, 3)
        instance.set_x(0xBEEF)
        # flip-flop reset (wildcard -> 0), then lo, then hi.
        assert device.log == [("w", 2, 0), ("w", 0, 0xEF), ("w", 1, 0xBE)]

    def test_read_order_follows_serialization(self):
        _, device, instance = bind(SERIALIZED, 3)
        device.cells[0] = 0x34
        device.cells[1] = 0x12
        assert instance.get_x() == 0x1234
        assert device.log == [("w", 2, 0), ("r", 0), ("r", 1)]


STRUCT = """
device d (base : bit[8] port @ {0..1}) {
    register a = base @ 0 : bit[8];
    register b = base @ 1 : bit[8];
    structure s = {
        variable x = a[3..0], volatile : int(4);
        variable y = a[7..4], volatile : int(4);
        variable z = b, volatile : int(8);
    };
}
"""


class TestStructures:
    def test_grouped_read_each_register_once(self):
        bus, device, instance = bind(STRUCT, 2)
        device.cells[0] = 0x21
        device.cells[1] = 0x99
        state = instance.get_s()
        assert state == {"x": 1, "y": 2, "z": 0x99}
        assert device.log.count(("r", 0)) == 1

    def test_member_reads_use_snapshot(self):
        bus, device, instance = bind(STRUCT, 2)
        device.cells[0] = 0x21
        instance.get_s()
        device.cells[0] = 0xFF  # device moves on
        assert instance.get_x() == 1  # snapshot is stable

    def test_member_read_before_fetch_raises_in_debug(self):
        _, _, instance = bind(STRUCT, 2)
        with pytest.raises(DevilRuntimeError):
            instance.get_x()

    def test_member_read_before_fetch_tolerated_in_release(self):
        _, _, instance = bind(STRUCT, 2, debug=False)
        assert instance.get_x() == 0

    def test_structure_write_requires_all_members(self):
        _, _, instance = bind(STRUCT, 2)
        with pytest.raises(DevilRuntimeError):
            instance.set_structure("s", {"x": 1})

    def test_structure_write_composes_registers(self):
        _, device, instance = bind(STRUCT, 2)
        instance.set_s(x=0xA, y=0x5, z=0x77)
        assert device.cells[0] == 0x5A
        assert device.cells[1] == 0x77


CONDITIONAL = """
device d (base : bit[8] port @ {0..1}) {
    register w1 = write base @ 0 : bit[8];
    register w2 = write base @ 1 : bit[8];
    structure init = {
        variable mode = w1[0] : { FULL => '1', SHORT => '0' };
        variable pad = w1[7..1] : int(7);
        variable vec = w2 : int(8);
    } serialized as { w1; if (mode == FULL) w2; };
}
"""


class TestConditionalSerialization:
    def test_condition_true_writes_all(self):
        _, device, instance = bind(CONDITIONAL, 2)
        instance.set_init(mode="FULL", pad=0, vec=0x42)
        assert [entry[1] for entry in device.log] == [0, 1]

    def test_condition_false_skips_step(self):
        _, device, instance = bind(CONDITIONAL, 2)
        instance.set_init(mode="SHORT", pad=0, vec=0x42)
        assert [entry[1] for entry in device.log] == [0]


MEMORY = """
device d (base : bit[8] port @ {0}) {
    private variable xm : bool;
    register r = base @ 0, set {xm = false} : bit[8];
    variable gate = r[0], set {xm = gate}, write trigger for true : bool;
    variable rest = r[7..1] : int(7);
}
"""


class TestMemoryVariablesAndSetActions:
    def test_set_action_records_written_value(self):
        _, _, instance = bind(MEMORY, 1)
        instance.set_gate(True)
        assert instance.get("xm") is True

    def test_register_set_action_overwrites(self):
        _, _, instance = bind(MEMORY, 1)
        instance.set_gate(True)
        instance.set_rest(3)  # any access to r runs set {xm = false}...
        # ...but gate's own set-action then records gate's cached value.
        # Reading rest (no gate set-action) leaves xm = false.
        instance.get_rest()
        assert instance.get("xm") is False

    def test_memory_read_before_init_raises(self):
        _, _, instance = bind(MEMORY, 1)
        with pytest.raises(DevilRuntimeError):
            instance.get("xm")


DEBUG_CHECKS = """
device d (base : bit[8] port @ {0}) {
    register r = base @ 0 : bit[8];
    variable small = r[2..0] : int(3);
    variable rest = r[7..3] : int(5);
}
"""


class TestDebugMode:
    def test_range_check_in_debug(self):
        _, _, instance = bind(DEBUG_CHECKS, 1)
        with pytest.raises(DevilRuntimeError):
            instance.set_small(9)

    def test_release_mode_masks_instead(self):
        _, device, instance = bind(DEBUG_CHECKS, 1, debug=False)
        instance.set_small(9)  # 0b1001 truncated to width 3
        assert device.cells[0] & 0b111 == 0b001

    def test_release_mode_returns_raw_on_bad_decode(self):
        source = """
device d (base : bit[8] port @ {0}) {
    register r = base @ 0 : bit[8];
    variable v = r[0] : { ON <=> '1' , OFF <= '0'};
    variable rest = r[7..1] : int(7);
}
"""
        _, device, instance = bind(source, 1)
        device.cells[0] = 1
        assert instance.get_v() == "ON"


class TestIntrospection:
    def test_cached_register(self):
        _, _, instance = bind(SHARED, 1)
        assert instance.cached_register("r") is None
        instance.set_lo(3)
        assert instance.cached_register("r") == 3

    def test_invalidate_caches(self):
        _, _, instance = bind(STRUCT, 2)
        instance.get_s()
        instance.invalidate_caches()
        with pytest.raises(DevilRuntimeError):
            instance.get_x()
