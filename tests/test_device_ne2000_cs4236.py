"""Behavioural tests for the NE2000 and CS4236B models."""

import pytest

from repro.bus import BusError
from repro.devices.cs4236 import CHIP_ID, VERSION_ID, Cs4236Model
from repro.devices.ne2000 import (
    Ne2000DataPort,
    Ne2000Model,
    Ne2000ResetPort,
    PAGE_SIZE,
    RAM_BASE,
)


class TestNe2000CommandRegister:
    def test_page_select(self):
        nic = Ne2000Model()
        nic.io_write(0, 0x62, 8)  # START | NODMA | page 1
        assert nic.page == 1
        assert nic.io_read(1, 8) == nic.mac[0]

    def test_start_stop_bits(self):
        nic = Ne2000Model()
        nic.io_write(0, 0x02, 8)
        assert nic.running
        nic.io_write(0, 0x01, 8)
        assert not nic.running

    def test_neutral_st_preserves_state(self):
        nic = Ne2000Model()
        nic.io_write(0, 0x02, 8)
        nic.io_write(0, 0x20, 8)   # NODMA, st bits 00
        assert nic.running

    def test_cr_readback(self):
        nic = Ne2000Model()
        nic.io_write(0, 0x62, 8)
        assert nic.io_read(0, 8) & 0b11 == 0b10
        assert nic.io_read(0, 8) >> 6 == 1


class TestNe2000RemoteDma:
    def _setup_write(self, nic, address, count):
        nic.io_write(0, 0x22, 8)  # start, page 0
        nic.io_write(10, count & 0xFF, 8)
        nic.io_write(11, count >> 8, 8)
        nic.io_write(8, address & 0xFF, 8)
        nic.io_write(9, address >> 8, 8)
        nic.io_write(0, 0x12, 8)  # remote write

    def test_word_write_and_read(self):
        nic = Ne2000Model()
        self._setup_write(nic, RAM_BASE, 4)
        nic.data_port_write(0x3412, 16)
        nic.data_port_write(0x7856, 16)
        assert nic.ram[0:4] == bytes([0x12, 0x34, 0x56, 0x78])
        assert nic.isr & 0x40  # RDC

    def test_read_without_command_fails(self):
        with pytest.raises(BusError):
            Ne2000Model().data_port_read(16)

    def test_out_of_window_address(self):
        nic = Ne2000Model()
        self._setup_write(nic, 0x0000, 2)  # below RAM_BASE
        with pytest.raises(BusError):
            nic.data_port_write(1, 16)


class TestNe2000Frames:
    def _running(self):
        nic = Ne2000Model()
        nic.page_start = nic.boundary = nic.current = 0x46
        nic.page_stop = 0x80
        nic.io_write(0, 0x22, 8)
        return nic

    def test_transmit(self):
        nic = self._running()
        frame = bytes(range(60))
        nic.ram[0:60] = frame   # tx buffer at page 0x40
        nic.io_write(4, 0x40, 8)
        nic.io_write(5, 60, 8)
        nic.io_write(6, 0, 8)
        nic.io_write(0, 0x26, 8)  # TXP
        assert nic.transmitted == [frame]
        assert nic.isr & 0x02

    def test_transmit_while_stopped_rejected(self):
        nic = Ne2000Model()
        with pytest.raises(BusError):
            nic.io_write(0, 0x05, 8)  # TXP + STOP... stop wins
            nic.io_write(0, 0x04 | 0x02, 8)

    def test_receive_builds_header(self):
        nic = self._running()
        assert nic.receive_frame(b"x" * 60)
        start = (0x46 * PAGE_SIZE) - RAM_BASE
        header = nic.ram[start:start + 4]
        assert header[0] == 0x01
        assert header[2] | (header[3] << 8) == 64
        assert nic.current == header[1]
        assert nic.isr & 0x01

    def test_receive_wraps_ring(self):
        nic = self._running()
        nic.current = 0x7F   # write pointer at the last ring page
        nic.boundary = 0x7E  # driver has consumed everything before it
        assert nic.receive_frame(b"y" * 300)
        assert nic.current == 0x46 + (0x7F + 2 - 0x80)

    def test_ring_overflow_sets_ovw(self):
        nic = self._running()
        nic.page_stop = 0x48  # tiny two-page ring
        assert not nic.receive_frame(b"z" * 400)
        assert nic.isr & 0x10

    def test_stopped_nic_drops_frames(self):
        nic = Ne2000Model()
        assert not nic.receive_frame(b"q" * 60)

    def test_isr_write_one_to_clear(self):
        nic = self._running()
        nic.receive_frame(b"x" * 60)
        nic.io_write(7, 0x01, 8)
        assert nic.io_read(7, 8) & 0x01 == 0


class TestNe2000Adapters:
    def test_reset_port(self):
        nic = Ne2000Model()
        nic.io_write(0, 0x22, 8)
        port = Ne2000ResetPort(nic)
        port.io_read(0, 8)
        assert nic.resets == 1
        assert not nic.running
        assert nic.isr & 0x80

    def test_data_port_adapter_offset_checked(self):
        adapter = Ne2000DataPort(Ne2000Model())
        with pytest.raises(BusError):
            adapter.io_read(1, 16)


class TestCs4236Indexed:
    def test_index_then_data(self):
        chip = Cs4236Model()
        chip.io_write(0, 6, 8)
        chip.io_write(1, 0x3F, 8)
        assert chip.indexed[6] == 0x3F
        assert chip.io_read(1, 8) == 0x3F

    def test_chip_id_preloaded(self):
        chip = Cs4236Model()
        chip.io_write(0, 12, 8)
        assert chip.io_read(1, 8) & 0x0F == CHIP_ID

    def test_mce_bit(self):
        chip = Cs4236Model()
        chip.io_write(0, 0x40 | 3, 8)
        assert chip.mode_change_enable
        assert chip.io_read(0, 8) & 0x40


class TestCs4236ExtendedAutomaton:
    def _select_extended(self, chip, xa):
        chip.io_write(0, 23, 8)
        value = 0b1000  # XRAE
        value |= ((xa >> 4) & 1) << 2
        value |= (xa & 0xF) << 4
        chip.io_write(1, value, 8)

    def test_xrae_enters_extended_mode(self):
        chip = Cs4236Model()
        self._select_extended(chip, 2)
        assert chip.extended_mode
        assert chip.extended_address == 2

    def test_extended_data_access(self):
        chip = Cs4236Model()
        self._select_extended(chip, 2)
        chip.io_write(1, 0x55, 8)
        assert chip.extended[2] == 0x55
        assert chip.io_read(1, 8) == 0x55

    def test_x25_version(self):
        chip = Cs4236Model()
        self._select_extended(chip, 25)
        assert chip.io_read(1, 8) == VERSION_ID

    def test_control_write_restores_address_mode(self):
        chip = Cs4236Model()
        self._select_extended(chip, 2)
        chip.io_write(0, 23, 8)   # any control write
        assert not chip.extended_mode
        chip.io_write(1, 0b0001, 8)  # ACF only, XRAE clear
        assert chip.indexed[23] & 1 == 1
        assert not chip.extended_mode

    def test_i23_bit1_always_zero(self):
        chip = Cs4236Model()
        chip.io_write(0, 23, 8)
        chip.io_write(1, 0b11, 8)
        assert chip.indexed[23] & 0b10 == 0

    def test_nonexistent_extended_register(self):
        chip = Cs4236Model()
        self._select_extended(chip, 20)
        with pytest.raises(BusError):
            chip.io_read(1, 8)

    def test_bad_offset(self):
        with pytest.raises(BusError):
            Cs4236Model().io_read(2, 8)
