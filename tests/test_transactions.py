"""Tests for write transactions (§6: factorized device communication).

The paper's micro-analysis identifies Devil's single penalty: writing N
independent variables of a shared register costs N I/O operations where
hand-written C composes one.  §6 proposes compiler-level "factorizing
and scheduling [of] device communications"; the runtime realises it as
a transaction block, and these tests check both the semantics and the
recovered parity.
"""

import pytest

from repro.bus import Bus
from repro.devil.compiler import compile_spec
from repro.devil.errors import DevilRuntimeError
from tests.conftest import IDE_BASE, IDE_CTRL, NE_BASE, shipped_spec


class Ram:
    def __init__(self):
        self.cells = [0] * 8
        self.writes = []

    def io_read(self, offset, width):
        return self.cells[offset]

    def io_write(self, offset, value, width):
        self.cells[offset] = value
        self.writes.append((offset, value))


SHARED = """
device d (base : bit[8] port @ {0..1}) {
    register r = base @ 0 : bit[8];
    variable lo = r[3..0] : int(4);
    variable hi = r[7..4] : int(4);
    register q = base @ 1 : bit[8];
    variable other = q : int(8);
}
"""


def bind(source=SHARED):
    spec = compile_spec(source)
    bus = Bus()
    ram = Ram()
    bus.map_device(0x10, 8, ram)
    return bus, ram, spec.bind(bus, {"base": 0x10})


class TestCoalescing:
    def test_one_write_per_register(self):
        bus, ram, device = bind()
        with device.transaction():
            device.set_lo(0xA)
            device.set_hi(0x5)
        assert ram.writes == [(0, 0x5A)]

    def test_multiple_registers_in_program_order(self):
        bus, ram, device = bind()
        with device.transaction():
            device.set_other(0x77)
            device.set_lo(0x1)
            device.set_hi(0x2)
        assert ram.writes == [(1, 0x77), (0, 0x21)]

    def test_last_write_wins_within_register(self):
        bus, ram, device = bind()
        with device.transaction():
            device.set_lo(0x1)
            device.set_lo(0x9)
        assert ram.writes == [(0, 0x09)]

    def test_read_flushes_pending_writes(self):
        bus, ram, device = bind()
        with device.transaction():
            device.set_lo(0x3)
            assert device.get_lo() == 0x3     # flush happened first
            device.set_hi(0x4)
        assert ram.writes[0] == (0, 0x03)
        assert ram.writes[-1] == (0, 0x43)

    def test_no_nesting(self):
        _, _, device = bind()
        with pytest.raises(DevilRuntimeError, match="nest"):
            with device.transaction():
                with device.transaction():
                    pass

    def test_empty_transaction_is_free(self):
        bus, _, device = bind()
        with device.transaction():
            pass
        assert bus.accounting.total_ops == 0

    def test_untouched_neighbours_keep_cached_bits(self):
        bus, ram, device = bind()
        device.set_hi(0xF)
        with device.transaction():
            device.set_lo(0x5)
        assert ram.cells[0] == 0xF5


class TestTriggerComposition:
    """Batching trigger variables composes command bytes like the
    hand-written NE2000 driver's single ``outb(START | RREAD)``."""

    def test_ne2000_start_and_dma_in_one_write(self, nic_machine):
        bus, nic, device = nic_machine
        device.set_remote_byte_count(4)
        device.set_remote_start_address(0x4000)
        before = bus.accounting.snapshot()
        with device.transaction():
            device.set_st("START")
            device.set_rd("REMOTE_WRITE")
        delta = bus.accounting.delta(before)
        assert delta.writes == 1
        assert nic.running
        assert nic.remote_cmd == 0b010


class TestParityWithHandWrittenCode:
    def test_ide_device_head_setup_parity(self, ide_machine):
        """§4.3's penalty case disappears: 3 stub writes -> 1 outb."""
        bus, disk, _, _, ide_dev, _ = ide_machine
        before = bus.accounting.snapshot()
        with ide_dev.transaction():
            ide_dev.set_lba_mode(True)
            ide_dev.set_drive("MASTER")
            ide_dev.set_head(5)
        delta = bus.accounting.delta(before)
        assert delta.total_ops == 1
        assert disk.device == 0xE5

    def test_functionality_identical_to_unbatched(self, ide_machine):
        _, disk, _, _, ide_dev, _ = ide_machine
        ide_dev.set_lba_mode(True)
        ide_dev.set_drive("MASTER")
        ide_dev.set_head(5)
        unbatched = disk.device
        disk.device = 0
        ide_dev.invalidate_caches()
        with ide_dev.transaction():
            ide_dev.set_lba_mode(True)
            ide_dev.set_drive("MASTER")
            ide_dev.set_head(5)
        assert disk.device == unbatched


class TestSetActions:
    def test_set_actions_run_after_flush(self):
        source = """
device d (base : bit[8] port @ {0}) {
    private variable seen : bool;
    register r = base @ 0 : bit[8];
    variable flag = r[0], set {seen = flag} : bool;
    variable rest = r[7..1] : int(7);
}
"""
        _, ram, device = bind(source)
        with device.transaction():
            device.set_flag(True)
            device.set_rest(3)
        assert device.get("seen") is True
        assert ram.writes == [(0, 0b0000_0111)]
