"""Property-based interleaving tests for the fleet backends.

Each property case is generated from a seeded :class:`random.Random`:
a random fleet composition, a random request mix drawn from the
idempotent shipped requests, a random scheduling policy (plain or
weighted round-robin, with random weights), and random worker counts
for both the thread and the process backend.  Whatever the draw, three
invariants must hold:

* **Placement determinism** — the request→device assignment matches a
  pure-Python reimplementation of the submit-time policy, computed
  without running anything.  Worker count, backend and execution
  interleaving must not be able to move a request.
* **Port-op conservation** — merged accounting (total operations,
  block words, per-width splits) is identical across serial, thread
  and process runs: sharding must not change what reaches the wire.
* **End-state exactness** — per-mapping device state is byte-equal to
  the serial reference.

On failure the harness *shrinks* the case — greedily dropping schedule
entries and lowering worker counts while the failure reproduces — and
reports the seed plus the minimal reproduction, so a red run is
directly actionable.
"""

from __future__ import annotations

import random

import pytest

from repro.engine import (
    Fleet,
    ProcessFleet,
    fleet_layout,
    ide_sector_checksum,
    ide_sector_read,
    ide_sector_read_txn,
    ne2000_ring_poll,
    pm2_fill_rect,
    session_weight,
)

pytestmark = pytest.mark.concurrency

#: Idempotent request pool per spec (safe to replay in any mix).
REQUEST_POOL = {
    "ide": [ide_sector_read, ide_sector_read_txn, ide_sector_checksum],
    "permedia2": [pm2_fill_rect],
    "ne2000": [ne2000_ring_poll],
}

FAST_SEEDS = range(6)
SLOW_SEEDS = range(6, 22)


# ---------------------------------------------------------------------------
# Case generation
# ---------------------------------------------------------------------------


def generate_case(seed: int) -> dict:
    rng = random.Random(seed)
    specs = sorted(REQUEST_POOL)
    devices = [rng.choice(specs) for _ in range(rng.randint(2, 5))]
    policy = rng.choice(("round-robin", "weighted-round-robin"))
    weights = None
    if policy == "weighted-round-robin":
        weights = {label: rng.randint(1, 4)
                   for _, label, _ in fleet_layout(devices)}
    present = sorted(set(devices))
    schedule = []
    for _ in range(rng.randint(5, 18)):
        spec = rng.choice(present)
        schedule.append((spec, rng.choice(REQUEST_POOL[spec])))
    return {
        "seed": seed,
        "devices": devices,
        "policy": policy,
        "weights": weights,
        "schedule": schedule,
        "thread_workers": rng.randint(1, 4),
        "process_workers": rng.randint(1, 3),
    }


# ---------------------------------------------------------------------------
# The pure placement model (independent of the engine code)
# ---------------------------------------------------------------------------


def expected_placement(case: dict) -> dict[str, int]:
    """``label -> request count`` from a from-scratch reimplementation
    of the submit-time policies (round-robin cursor / smooth weighted
    round-robin with first-max tie-break in mapping order)."""
    layout = fleet_layout(case["devices"])
    by_spec: dict[str, list[str]] = {}
    for spec, label, _ in layout:
        by_spec.setdefault(spec, []).append(label)
    counts = {label: 0 for _, label, _ in layout}

    if case["policy"] == "round-robin":
        cursors = {spec: 0 for spec in by_spec}
        for spec, _ in case["schedule"]:
            labels = by_spec[spec]
            counts[labels[cursors[spec] % len(labels)]] += 1
            cursors[spec] += 1
        return counts

    weight = {label: session_weight(case["weights"], label, spec)
              for spec, label, _ in layout}
    credit = {label: 0 for _, label, _ in layout}
    totals = {spec: sum(weight[label] for label in labels)
              for spec, labels in by_spec.items()}
    for spec, _ in case["schedule"]:
        for label in by_spec[spec]:
            credit[label] += weight[label]
        chosen = by_spec[spec][0]
        for label in by_spec[spec]:
            if credit[label] > credit[chosen]:
                chosen = label
        credit[chosen] -= totals[spec]
        counts[chosen] += 1
    return counts


# ---------------------------------------------------------------------------
# Checking and shrinking
# ---------------------------------------------------------------------------


def _run_case(case: dict, backend: str):
    kwargs = dict(policy=case["policy"], weights=case["weights"])
    if backend == "serial":
        fleet = Fleet(case["devices"], workers=1, **kwargs)
    elif backend == "thread":
        fleet = Fleet(case["devices"], workers=case["thread_workers"],
                      **kwargs)
    else:
        fleet = ProcessFleet(case["devices"],
                             workers=case["process_workers"], **kwargs)
    with fleet:
        fleet.run(case["schedule"])
        return {
            "placement": fleet.completed_by_device(),
            "accounting": fleet.accounting
            if backend == "process" else fleet.accounting.snapshot(),
            "states": fleet.device_states(),
        }


def check_case(case: dict) -> str | None:
    """Run the case on all three backends; return a failure description
    or ``None`` when every invariant holds."""
    expected = expected_placement(case)
    serial = _run_case(case, "serial")
    if serial["placement"] != expected:
        return (f"serial placement {serial['placement']} != pure model "
                f"{expected}")
    for backend in ("thread", "process"):
        result = _run_case(case, backend)
        if result["placement"] != expected:
            return (f"{backend} placement {result['placement']} != "
                    f"pure model {expected}")
        if result["accounting"] != serial["accounting"]:
            return (f"{backend} accounting diverged: "
                    f"{result['accounting']} != {serial['accounting']}")
        if result["accounting"].total_ops != \
                serial["accounting"].total_ops:
            return f"{backend} port-op total diverged"
        if result["states"] != serial["states"]:
            diverged = sorted(
                name for name in serial["states"]
                if result["states"].get(name) != serial["states"][name])
            return f"{backend} end-state diverged for {diverged}"
    return None


def shrink_case(case: dict, failure: str) -> tuple[dict, str]:
    """Greedily minimise a failing case while it still fails.

    Passes: drop one schedule entry at a time (restarting after each
    success), then lower worker counts toward 1.  Deterministic, no
    randomness — the shrunk case is reproducible from the report alone.
    """
    current, current_failure = dict(case), failure
    progress = True
    while progress:
        progress = False
        for index in range(len(current["schedule"])):
            candidate = dict(current)
            candidate["schedule"] = (current["schedule"][:index] +
                                     current["schedule"][index + 1:])
            if not candidate["schedule"]:
                continue
            result = check_case(candidate)
            if result is not None:
                current, current_failure = candidate, result
                progress = True
                break
    for key in ("thread_workers", "process_workers"):
        while current[key] > 1:
            candidate = dict(current)
            candidate[key] = current[key] - 1
            result = check_case(candidate)
            if result is None:
                break
            current, current_failure = candidate, result
    return current, current_failure


def describe_case(case: dict) -> str:
    schedule = [(spec, request.__name__)
                for spec, request in case["schedule"]]
    return (f"seed={case['seed']} devices={case['devices']} "
            f"policy={case['policy']} weights={case['weights']} "
            f"thread_workers={case['thread_workers']} "
            f"process_workers={case['process_workers']} "
            f"schedule={schedule}")


def assert_case_holds(seed: int) -> None:
    case = generate_case(seed)
    failure = check_case(case)
    if failure is None:
        return
    minimal, minimal_failure = shrink_case(case, failure)
    pytest.fail(
        f"fleet property violated for seed {seed}: {failure}\n"
        f"minimal reproduction after shrinking: {minimal_failure}\n"
        f"  {describe_case(minimal)}")


# ---------------------------------------------------------------------------
# The properties
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_random_interleavings_preserve_fleet_invariants(seed):
    assert_case_holds(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_random_interleavings_extended_sweep(seed):
    assert_case_holds(seed)


def test_generation_is_seed_deterministic():
    """The harness itself must be reproducible: same seed, same case."""
    assert generate_case(3) == generate_case(3)
    assert generate_case(3) != generate_case(4)


def test_shrinker_minimises_a_synthetic_failure():
    """Feed the shrinker a case that 'fails' whenever a checksum
    request is present and verify it reduces to a single-entry
    schedule with both worker counts at 1."""
    case = generate_case(0)
    case["schedule"] = [("ide", ide_sector_read),
                        ("ide", ide_sector_checksum),
                        ("ne2000", ne2000_ring_poll)]
    case["devices"] = ["ide", "ne2000"]
    case["thread_workers"] = case["process_workers"] = 3

    def fake_check(candidate):
        has_checksum = any(request is ide_sector_checksum
                           for _, request in candidate["schedule"])
        return "synthetic failure" if has_checksum else None

    original_check = globals()["check_case"]
    globals()["check_case"] = fake_check
    try:
        minimal, failure = shrink_case(case, "synthetic failure")
    finally:
        globals()["check_case"] = original_check
    assert failure == "synthetic failure"
    assert minimal["schedule"] == [("ide", ide_sector_checksum)]
    assert minimal["thread_workers"] == 1
    assert minimal["process_workers"] == 1


def test_weighted_policy_observes_weights_end_to_end():
    """A deliberately skewed weighted case routes proportionally on
    both backends (not just in the pure model)."""
    case = {
        "seed": -1,
        "devices": ["ide", "ide"],
        "policy": "weighted-round-robin",
        "weights": {"ide0": 3, "ide1": 1},
        "schedule": [("ide", ide_sector_read)] * 12,
        "thread_workers": 2,
        "process_workers": 2,
    }
    assert expected_placement(case) == {"ide0": 9, "ide1": 3}
    assert check_case(case) is None
