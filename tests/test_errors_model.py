"""Unit tests for the diagnostics module and the resolved model."""

import pytest

from repro.devil.errors import (
    Diagnostic,
    DiagnosticSink,
    DevilCheckError,
    DevilError,
    SourceLocation,
    UNKNOWN_LOCATION,
)
from repro.devil.model import (
    ParamRef,
    ResolvedAction,
    ResolvedChunk,
    ResolvedVariable,
    VarRef,
    Wildcard,
)
from repro.devil.types import IntType


class TestSourceLocation:
    def test_str_format(self):
        location = SourceLocation(12, 5, "chip.devil")
        assert str(location) == "chip.devil:12:5"

    def test_ordering(self):
        early = SourceLocation(1, 2, "a")
        late = SourceLocation(3, 1, "a")
        assert early < late

    def test_unknown_location(self):
        assert UNKNOWN_LOCATION.line == 0


class TestDevilErrors:
    def test_message_carries_location(self):
        error = DevilError("boom", SourceLocation(7, 3, "x.devil"))
        assert "x.devil:7:3" in str(error)
        assert error.message == "boom"

    def test_hierarchy(self):
        from repro.devil.errors import (
            DevilCodegenError,
            DevilLexError,
            DevilParseError,
            DevilRuntimeError,
        )
        for cls in (DevilLexError, DevilParseError, DevilCheckError,
                    DevilCodegenError, DevilRuntimeError):
            assert issubclass(cls, DevilError)


class TestDiagnosticSink:
    def test_collects_errors_and_warnings(self):
        sink = DiagnosticSink()
        sink.error("bad", rule="strong-typing")
        sink.warning("meh", rule="behaviour")
        assert len(sink.errors) == 1
        assert len(sink.warnings) == 1

    def test_raise_if_errors_includes_all(self):
        sink = DiagnosticSink()
        sink.error("first problem")
        sink.error("second problem")
        with pytest.raises(DevilCheckError) as excinfo:
            sink.raise_if_errors()
        assert "first problem" in str(excinfo.value)
        assert "second problem" in str(excinfo.value)
        assert "2 error(s)" in str(excinfo.value)

    def test_warnings_do_not_raise(self):
        sink = DiagnosticSink()
        sink.warning("just a warning")
        sink.raise_if_errors()

    def test_diagnostic_str_includes_rule(self):
        diagnostic = Diagnostic("error", "bad thing",
                                SourceLocation(1, 1), "no-omission")
        assert "[no-omission]" in str(diagnostic)


class TestResolvedActionSubstitution:
    def test_param_ref_substituted(self):
        action = ResolvedAction("ia", "variable", ParamRef("i"))
        concrete = action.substitute({"i": 23})
        assert concrete.value == 23

    def test_unbound_param_survives(self):
        action = ResolvedAction("ia", "variable", ParamRef("j"))
        assert action.substitute({"i": 1}).value == ParamRef("j")

    def test_struct_value_substituted_recursively(self):
        action = ResolvedAction(
            "XS", "structure", {"XA": ParamRef("j"), "XRAE": True})
        concrete = action.substitute({"j": 2})
        assert concrete.value == {"XA": 2, "XRAE": True}

    def test_literals_untouched(self):
        for value in (5, True, "SYMBOL", Wildcard(), VarRef("v")):
            action = ResolvedAction("t", "variable", value)
            assert action.substitute({"x": 1}).value == value


class TestResolvedVariable:
    def _variable(self):
        return ResolvedVariable(
            name="dx", type=IntType(8, signed=True),
            chunks=[ResolvedChunk("x_high", 3, 0),
                    ResolvedChunk("x_low", 3, 0)])

    def test_width_sums_chunks(self):
        assert self._variable().width == 8

    def test_registers_in_chunk_order(self):
        assert self._variable().registers() == ["x_high", "x_low"]

    def test_serialization_overrides_order(self):
        variable = self._variable()
        variable.serialization = ["x_low", "x_high"]
        assert variable.registers() == ["x_low", "x_high"]

    def test_chunks_of_reports_value_offsets(self):
        variable = self._variable()
        (high_chunk,) = variable.chunks_of("x_high")
        (low_chunk,) = variable.chunks_of("x_low")
        assert high_chunk[1] == 4   # x_high holds value bits 7..4
        assert low_chunk[1] == 0


class TestResolvedDeviceQueries:
    def test_variables_of_register(self):
        from tests.conftest import shipped_spec
        model = shipped_spec("busmouse").model
        names = {v.name for v in model.variables_of_register("y_high")}
        assert names == {"dy", "buttons"}

    def test_public_excludes_private(self):
        from tests.conftest import shipped_spec
        model = shipped_spec("ne2000").model
        names = {v.name for v in model.public_variables()}
        assert "page" not in names
        assert "st" in names


POST_ACTION_SPEC = """
device pa (base : bit[8] port @ {0..1}) {
    register counter = write base @ 1 : bit[8];
    private variable accesses = counter, write trigger : int(8);
    register r = base @ 0, post {accesses = 1} : bit[8];
    variable v = r : int(8);
}
"""


class TestPostActions:
    """§2.2 lists access post-actions; they run after the register I/O."""

    def test_post_action_runs_after_access(self):
        from repro.bus import Bus
        from repro.devil.compiler import compile_spec

        class Ram:
            def __init__(self):
                self.cells = [0] * 4
                self.order = []

            def io_read(self, offset, width):
                self.order.append(("r", offset))
                return self.cells[offset]

            def io_write(self, offset, value, width):
                self.order.append(("w", offset))
                self.cells[offset] = value

        spec = compile_spec(POST_ACTION_SPEC)
        bus = Bus()
        ram = Ram()
        bus.map_device(0, 4, ram)
        device = spec.bind(bus, {"base": 0})
        device.get_v()
        # The post-action write to `counter` happens after the read.
        assert ram.order == [("r", 0), ("w", 1)]

    def test_post_action_in_generated_backends(self):
        from repro.devil.compiler import compile_spec
        import re
        spec = compile_spec(POST_ACTION_SPEC)
        header = spec.emit_c(prefix="pa")
        match = re.search(
            r"static inline unsigned pa__get_v\(pa_state_t \*d\)"
            r"\n\{.*?\n\}", header, re.S)
        assert match is not None
        get_body = match.group(0)
        assert get_body.index("devil_in") < get_body.index(
            "pa__set_accesses")
        module = spec.emit_python()
        compile(module, "pa", "exec")
        assert "self.set_accesses(1)" in module
