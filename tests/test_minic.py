"""Unit tests for the mini-C lexer and semantic checker."""

import pytest

from repro.minic import (
    CLexError,
    CParseError,
    CTokenKind,
    check_c,
    kernel_externals,
    number_value,
    tokenize_c,
)


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize_c("int x = 0x1f | foo(2);")
        kinds = [t.kind for t in tokens[:-1]]
        assert kinds == [CTokenKind.IDENT, CTokenKind.IDENT,
                         CTokenKind.OPERATOR, CTokenKind.NUMBER,
                         CTokenKind.OPERATOR, CTokenKind.IDENT,
                         CTokenKind.PUNCT, CTokenKind.NUMBER,
                         CTokenKind.PUNCT, CTokenKind.PUNCT]

    def test_maximal_munch(self):
        texts = [t.text for t in tokenize_c("a <<= b >> c")[:-1]]
        assert texts == ["a", "<<=", "b", ">>", "c"]

    def test_directive_is_one_token(self):
        tokens = tokenize_c("#define FOO 1\nbar")
        assert tokens[0].kind is CTokenKind.DIRECTIVE
        assert tokens[1].text == "bar"

    def test_comments_skipped(self):
        tokens = tokenize_c("a /* b */ c // d\ne")
        assert [t.text for t in tokens[:-1]] == ["a", "c", "e"]

    def test_char_and_string_literals(self):
        tokens = tokenize_c("'a' \"hi\\\"there\"")
        assert tokens[0].kind is CTokenKind.CHAR
        assert tokens[1].kind is CTokenKind.STRING

    def test_bad_numeric_literal(self):
        with pytest.raises(CLexError):
            tokenize_c("int x = 0x;")
        with pytest.raises(CLexError):
            tokenize_c("int x = 12ab;")

    def test_octal_and_hex_values(self):
        assert number_value("0x1F") == 31
        assert number_value("010") == 8
        assert number_value("42UL") == 42

    def test_bad_octal(self):
        with pytest.raises(CLexError):
            tokenize_c("int x = 09;")


CLEAN = """
#define PORT 0x3f8
int read_port(void)
{
    int value;
    value = inb(PORT) & 0xff;
    return value;
}
"""


class TestCheckerDetection:
    def test_clean_fragment(self):
        assert not check_c(CLEAN, kernel_externals()).detected()

    def test_undeclared_identifier(self):
        bad = CLEAN.replace("return value;", "return valve;")
        result = check_c(bad, kernel_externals())
        assert result.errors

    def test_undeclared_macro_use(self):
        bad = CLEAN.replace("inb(PORT)", "inb(PROT)")
        assert check_c(bad, kernel_externals()).errors

    def test_macro_body_checked(self):
        source = "#define A FOO\nint f(void) { return A; }\n"
        assert check_c(source).errors

    def test_implicit_function_declaration_is_warning(self):
        bad = CLEAN.replace("inb(", "inq(")
        result = check_c(bad, kernel_externals())
        assert not result.errors
        assert result.warnings
        assert result.detected(warnings_detect=True)
        assert not result.detected(warnings_detect=False)

    def test_constant_mutation_silent(self):
        bad = CLEAN.replace("0x3f8", "0x3f0").replace("0xff", "0xfe")
        assert not check_c(bad, kernel_externals()).detected()

    def test_operator_mutation_silent(self):
        bad = CLEAN.replace("& 0xff", "&& 0xff")
        assert not check_c(bad, kernel_externals()).detected()

    def test_assignment_to_rvalue(self):
        source = "void f(void) { int a; (a + 1) = 2; }"
        assert check_c(source).errors

    def test_redefinition_in_scope(self):
        source = "void f(void) { int a; int a; }"
        assert check_c(source).errors

    def test_shadowing_in_inner_scope_ok(self):
        source = "void f(void) { int a; { int a; a = 1; } }"
        assert not check_c(source).detected()

    def test_calling_a_variable(self):
        source = "void f(void) { int a; a = 0; a(1); }"
        assert check_c(source).errors

    def test_macro_arity_checked(self):
        source = ("#define TWICE(x) ((x) * 2)\n"
                  "int f(void) { return TWICE(1, 2); }\n")
        assert check_c(source).errors

    def test_known_function_arity_warns(self):
        source = "void f(void) { outb(1); }"
        result = check_c(source, kernel_externals())
        assert result.warnings

    def test_defined_functions_collected(self):
        result = check_c(CLEAN, kernel_externals())
        assert result.defined_functions == {"read_port"}

    def test_macro_redefinition_warns(self):
        source = "#define A 1\n#define A 2\nint f(void) { return A; }\n"
        assert check_c(source).warnings


class TestCheckerParsing:
    def test_control_flow_statements(self):
        source = """
void f(int n)
{
    int i;
    for (i = 0; i < n; i++) {
        if (i == 3)
            continue;
        else
            n--;
    }
    while (n > 0)
        n -= 1;
    do { n++; } while (n < 2);
}
"""
        assert not check_c(source).detected()

    def test_pointers_arrays_casts(self):
        source = """
void f(unsigned short *buf, int n)
{
    unsigned char bytes[4];
    buf[0] = (unsigned short)(bytes[1] << 8);
    *(buf + 1) = sizeof(int);
    n = -n;
}
"""
        assert not check_c(source).detected()

    def test_conditional_expression(self):
        source = "int f(int a) { return a ? 1 : 2; }"
        assert not check_c(source).detected()

    def test_syntax_error_raises(self):
        with pytest.raises(CParseError):
            check_c("int f(void) { return ; ; } }")

    def test_keyword_in_expression_rejected(self):
        with pytest.raises(CParseError):
            check_c("int f(void) { return if; }")

    def test_prototypes_accepted(self):
        source = "extern int helper(int a, int b);\n" \
                 "int f(void) { return helper(1, 2); }\n"
        assert not check_c(source).detected()


class TestCorpusCleanliness:
    """Every unmutated corpus program must check clean (the baseline
    requirement of the mutation analysis)."""

    @pytest.mark.parametrize("name", ["BUSMOUSE_C", "IDE_C", "NE2000_C"])
    def test_c_corpus_clean(self, name):
        from repro.mutation import corpus
        source = getattr(corpus, name)
        assert not check_c(source, kernel_externals()).detected()

    @pytest.mark.parametrize("name,specs", [
        ("BUSMOUSE_CDEVIL", [("busmouse", "bm")]),
        ("IDE_CDEVIL", [("ide", "ide"), ("piix4", "pii")]),
        ("NE2000_CDEVIL", [("ne2000", "ne")]),
    ])
    def test_cdevil_corpus_clean(self, name, specs):
        from repro.mutation import corpus
        from repro.mutation.targets import stub_externals
        from tests.conftest import shipped_spec
        source = getattr(corpus, name)
        externals = kernel_externals()
        constants = set()
        for spec_name, prefix in specs:
            functions, consts = stub_externals(
                shipped_spec(spec_name).model, prefix)
            externals.update(functions)
            constants.update(consts)
        result = check_c(source, externals, constants)
        assert not result.detected(), [str(d) for d in result.diagnostics]
