"""Cross-check harness: interpreted vs specialized vs generated stubs.

Three artifacts claim to implement one semantics — the interpreting
runtime (``strategy="interpret"``), the bind-time specializer
(``strategy="specialize"``) and the standalone generated Python module
(``emit_python()``).  For every shipped specification this module runs
the same driver workload against identical simulated machines under all
three and asserts byte-identical :attr:`Bus.trace` I/O traces, identical
:class:`IoAccounting` counters and identical decoded results.

Debug-mode error parity is checked separately: interpreted and
specialized stubs must raise the *same* ``DevilRuntimeError`` text for
out-of-range writes, illegal enum symbols, structure-protocol violations
and missing/unknown structure members — and must perform no I/O while
doing so.
"""

import pytest

from repro.bus import Bus
from repro.devices.busmouse import REGION_SIZE as MOUSE_REGION
from repro.devices.busmouse import BusmouseModel
from repro.devices.cs4236 import REGION_SIZE as CS_REGION
from repro.devices.cs4236 import Cs4236Model
from repro.devices.dma8237 import REGION_SIZE as DMA_REGION
from repro.devices.dma8237 import Dma8237Model
from repro.devices.ide import REGION_SIZE as IDE_REGION
from repro.devices.ide import IdeControlPort, IdeDiskModel
from repro.devices.ne2000 import REGION_SIZE as NE_REGION
from repro.devices.ne2000 import (
    Ne2000DataPort,
    Ne2000Model,
    Ne2000ResetPort,
)
from repro.devices.permedia2 import REGION_SIZE as PM2_REGION
from repro.devices.permedia2 import Permedia2Aperture, Permedia2Model
from repro.devices.pic8259 import REGION_SIZE as PIC_REGION
from repro.devices.pic8259 import Pic8259Model
from repro.devices.piix4 import REGION_SIZE as BM_REGION
from repro.devices.piix4 import Piix4Model
from repro.devil.errors import DevilRuntimeError
from repro.devil.specialize import specialized_factory
from repro.devil.types import EnumType, IntSetType, IntType
from repro.specs import SPEC_NAMES
from tests.conftest import (
    BM_BASE,
    IDE_BASE,
    IDE_CTRL,
    MOUSE_BASE,
    NE_BASE,
    NE_DATA,
    NE_RESET,
    PM2_FB,
    PM2_REGS,
    shipped_spec,
)
from tests.test_py_backend import load_generated

DMA_BASE = 0x00
PIC_BASE = 0x20
CS_BASE = 0x534


# ---------------------------------------------------------------------------
# Machines and workloads (one per shipped spec)
# ---------------------------------------------------------------------------


def build_machine(name: str):
    """A fresh simulated machine for spec ``name``.

    Returns ``(bus, aux, bases)``: the tracing bus, auxiliary device
    models the workload pokes directly, and the base-address dict.
    """
    bus = Bus(tracing=True)
    if name == "busmouse":
        mouse = BusmouseModel()
        mouse.move(5, -3)
        mouse.set_buttons(0b101)
        bus.map_device(MOUSE_BASE, MOUSE_REGION, mouse, "busmouse")
        return bus, {"mouse": mouse}, {"base": MOUSE_BASE}
    if name == "dma8237":
        dma = Dma8237Model()
        bus.map_device(DMA_BASE, DMA_REGION, dma, "dma8237")
        return bus, {"dma": dma}, {"base": DMA_BASE}
    if name == "pic8259":
        pic = Pic8259Model()
        bus.map_device(PIC_BASE, PIC_REGION, pic, "pic8259")
        return bus, {"pic": pic}, {"base": PIC_BASE}
    if name == "ne2000":
        nic = Ne2000Model()
        bus.map_device(NE_BASE, NE_REGION, nic, "ne2000")
        bus.map_device(NE_DATA, 2, Ne2000DataPort(nic), "ne2000-data")
        bus.map_device(NE_RESET, 1, Ne2000ResetPort(nic), "ne2000-reset")
        return bus, {"nic": nic}, \
            {"base": NE_BASE, "data": NE_DATA, "rst": NE_RESET}
    if name == "cs4236":
        chip = Cs4236Model()
        bus.map_device(CS_BASE, CS_REGION, chip, "cs4236")
        return bus, {"chip": chip}, {"base": CS_BASE}
    if name == "ide":
        disk = IdeDiskModel(total_sectors=16)
        for index in range(0, len(disk.store), 3):
            disk.store[index] = (index * 7) & 0xFF
        bus.map_device(IDE_BASE, IDE_REGION, disk, "ide")
        bus.map_device(IDE_CTRL, 1, IdeControlPort(disk), "ide-ctrl")
        return bus, {"disk": disk}, \
            {"cmd": IDE_BASE, "data": IDE_BASE, "data32": IDE_BASE,
             "ctrl": IDE_CTRL}
    if name == "piix4":
        disk = IdeDiskModel(total_sectors=16)
        memory = bytearray(1 << 16)
        busmaster = Piix4Model(disk, memory)
        bus.map_device(BM_BASE, BM_REGION, busmaster, "piix4")
        return bus, {"busmaster": busmaster, "memory": memory}, \
            {"io": BM_BASE, "dtp": BM_BASE + 4}
    if name == "permedia2":
        gpu = Permedia2Model(width=64, height=48)
        bus.map_device(PM2_REGS, PM2_REGION, gpu, "permedia2")
        bus.map_device(PM2_FB, 1, Permedia2Aperture(gpu), "permedia2-fb")
        return bus, {"gpu": gpu}, {"regs": PM2_REGS, "fb": PM2_FB}
    raise AssertionError(f"no machine builder for {name!r}")


def _drive_busmouse(stubs, aux):
    results = [stubs.set_config("CONFIGURATION"),
               stubs.set_signature(0xA5),
               stubs.get_signature(),
               stubs.set_interrupt("ENABLE"),
               stubs.get_mouse_state(),
               stubs.get_dx(), stubs.get_dy(), stubs.get_buttons()]
    aux["mouse"].move(-2, 7)
    results += [stubs.get_mouse_state(), stubs.get_dx()]
    return results


def _drive_dma8237(stubs, aux):
    stubs.set_master_clear(0)
    stubs.set_address1(0x1234)
    stubs.set_count1(0x0010)
    stubs.set_channel_mode(mode_channel=1, mode_transfer="READ_MEM",
                           mode_autoinit=False, mode_down=False,
                           mode_kind="SINGLE")
    stubs.set_channel_mask(mask_channel=1, mask_set="MASK_OFF")
    stubs.set_request(req_channel=1, req_set="CLEAR")
    stubs.set_mask_bits(0b0101)
    results = [stubs.get_mask_bits(), stubs.get_status(),
               stubs.get_reached_tc(), stubs.get_dma_requests(),
               stubs.get_address1(), stubs.get_count1()]
    stubs.set_clear_mask(0)
    return results


def _drive_pic8259(stubs, aux):
    stubs.set_init(addr_vector=0, ltim="EDGE", adi="INTERVAL8",
                   sngl="CASCADED", ic4=True, vector_base=0x20,
                   slaves=0x04, sfnm=False, buffered=False,
                   master="BUF_SLAVE", aeoi=False,
                   microprocessor="X8086")
    stubs.set_device_mode("operation")
    stubs.set_irq_mask(0xFE)
    results = [stubs.get_device_mode(), stubs.get_irq_mask()]
    aux["pic"].raise_irq(1)
    stubs.set_read_select(special_mask="NO_SMM_ACTION", poll=False,
                          reg_select="READ_IRR")
    results.append(stubs.get_irq_register())
    stubs.set_eoi(eoi_kind="NON_SPECIFIC_EOI", eoi_level=0)
    return results


def _drive_ne2000(stubs, aux):
    stubs.set_st("START")
    stubs.set_remote_byte_count(8)
    stubs.set_remote_start_address(0x4000)
    stubs.set_rd("REMOTE_WRITE")
    stubs.write_dma_data_block([0x0102, 0x0304, 0x0506, 0x0708])
    stubs.set_remote_byte_count(8)
    stubs.set_remote_start_address(0x4000)
    stubs.set_rd("REMOTE_READ")
    return [stubs.read_dma_data_block(4),
            bytes(aux["nic"].ram[0:8])]


def _drive_cs4236(stubs, aux):
    stubs.set_left_dac_output(left_dac_attenuation=9,
                              left_dac_mute=True, left_dac_pad=False)
    stubs.set_left_adc_input(left_input_gain=3, left_mic_boost=True,
                             left_input_source="MIC",
                             left_input_pad=False)
    results = [stubs.get_version(), stubs.get_chip_id()]
    stubs.set_mic_left_volume(7)
    results.append(stubs.get_mic_left_volume())
    stubs.set_ACF(True)
    results.append(aux["chip"].extended_mode)
    return results


def _drive_ide(stubs, aux):
    stubs.set_irq_disabled(True)
    stubs.set_lba_mode(True)
    stubs.set_drive("MASTER")
    stubs.set_head(0)
    stubs.set_sector_count(1)
    stubs.set_lba_low(2)
    stubs.set_lba_mid(0)
    stubs.set_lba_high(0)
    stubs.set_command("READ_SECTORS")
    results = [stubs.get_ide_bsy(), stubs.get_ide_drq(),
               stubs.get_ide_err()]
    results.append(stubs.read_ide_data_block(256))
    results += [stubs.get_alt_status(), stubs.get_ide_error()]
    return results


def _drive_piix4(stubs, aux):
    stubs.set_prd_pointer(0x00010000)
    stubs.set_dma_direction("TO_MEMORY")
    results = [stubs.get_prd_pointer(), stubs.get_dma_direction()]
    stubs.set_dma_start(False)
    results += [stubs.get_bm_active(), stubs.get_bm_error(),
                stubs.get_bm_irq(), stubs.get_drive0_dma_capable()]
    return results


def _drive_permedia2(stubs, aux):
    stubs.set_pixel_depth("BPP8")
    stubs.set_scissor_min(scissor_min_x=0, scissor_min_y=0)
    stubs.set_scissor_max(scissor_max_x=64, scissor_max_y=48)
    stubs.set_window_origin(window_x=0, window_y=0)
    stubs.set_fb_write_mask(0xFFFFFFFF)
    stubs.set_logical_op(3)
    results = [stubs.get_fifo_space()]
    stubs.set_block_color(0x55)
    stubs.set_rect_x(2)
    stubs.set_rect_y(3)
    stubs.set_rect_width(8)
    stubs.set_rect_height(4)
    stubs.set_render("FILL_RECT")
    results += [stubs.get_graphics_busy(), stubs.get_fifo_overflow()]
    stubs.set_fb_address(0)
    stubs.write_fb_data_block([0x11, 0x22, 0x33])
    stubs.set_fb_address(0)
    results.append(stubs.read_fb_data_block(3))
    return results


WORKLOADS = {
    "busmouse": _drive_busmouse,
    "dma8237": _drive_dma8237,
    "pic8259": _drive_pic8259,
    "ne2000": _drive_ne2000,
    "cs4236": _drive_cs4236,
    "ide": _drive_ide,
    "piix4": _drive_piix4,
    "permedia2": _drive_permedia2,
}

STRATEGIES = ("interpret", "specialize", "generated")


def bind_stubs(name: str, kind: str, bus: Bus, bases: dict,
               debug: bool):
    if kind == "generated":
        model = shipped_spec(name).model
        cls = load_generated(name)
        return cls(bus, *[bases[param] for param in model.params],
                   debug=debug)
    return shipped_spec(name).bind(bus, bases, debug=debug,
                                   strategy=kind)


def run_workload(name: str, kind: str, debug: bool):
    bus, aux, bases = build_machine(name)
    stubs = bind_stubs(name, kind, bus, bases, debug)
    results = WORKLOADS[name](stubs, aux)
    return results, list(bus.trace), bus.accounting.snapshot()


# ---------------------------------------------------------------------------
# Three-way trace / accounting / result parity
# ---------------------------------------------------------------------------


class TestThreeWayParity:
    @pytest.mark.parametrize("name", SPEC_NAMES)
    @pytest.mark.parametrize("debug", [False, True],
                             ids=["release", "debug"])
    def test_traces_accounting_results_identical(self, name, debug):
        outputs = {kind: run_workload(name, kind, debug)
                   for kind in STRATEGIES}
        reference_results, reference_trace, reference_acct = \
            outputs["interpret"]
        for kind in ("specialize", "generated"):
            results, trace, acct = outputs[kind]
            assert trace == reference_trace, kind
            assert acct == reference_acct, kind
            assert results == reference_results, kind

    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_debug_and_release_do_identical_io(self, name):
        """§3.2: debug checks are CPU-side only — in both strategies."""
        for kind in ("interpret", "specialize"):
            _, release_trace, release_acct = run_workload(
                name, kind, debug=False)
            _, debug_trace, debug_acct = run_workload(
                name, kind, debug=True)
            assert debug_trace == release_trace
            assert debug_acct == release_acct


# ---------------------------------------------------------------------------
# Debug-mode error parity (interpret vs specialize, message-exact)
# ---------------------------------------------------------------------------


def _fresh_pair(name: str, debug: bool = True):
    instances = []
    for kind in ("interpret", "specialize"):
        bus, aux, bases = build_machine(name)
        instances.append((bus,
                          bind_stubs(name, kind, bus, bases, debug)))
    return instances


def _error_scenarios(name: str):
    """Derive no-I/O error calls from the model, uniformly per spec.

    Every scenario raises before any bus access (encode failures,
    structure protocol, missing members), so it can run on a fresh
    machine without disturbing device state.
    """
    model = shipped_spec(name).model
    scenarios = []
    for variable in model.public_variables():
        if variable.memory or variable.structure is not None:
            continue
        registers_writable = all(
            model.registers[c.register].writable for c in variable.chunks)
        if not registers_writable:
            continue
        var_type = variable.type
        if isinstance(var_type, IntType):
            scenarios.append((f"set_{variable.name}:out-of-range",
                              f"set_{variable.name}",
                              (var_type.maximum + 1,)))
        elif isinstance(var_type, IntSetType):
            scenarios.append((f"set_{variable.name}:not-a-member",
                              f"set_{variable.name}",
                              (max(var_type.values) + 1,)))
        elif isinstance(var_type, EnumType):
            scenarios.append((f"set_{variable.name}:bad-symbol",
                              f"set_{variable.name}", ("__NOPE__",)))
    for structure in model.structures.values():
        member = structure.members[0]
        member_var = model.variables[member]
        if all(model.registers[c.register].readable
               for c in member_var.chunks):
            scenarios.append((f"get_{member}:before-fetch",
                              f"get_{member}", ()))
        break  # one structure-protocol case per spec is enough
    return scenarios


class TestDebugErrorParity:
    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_identical_errors_and_no_io(self, name):
        scenarios = _error_scenarios(name)
        assert scenarios, f"spec {name} produced no error scenarios"
        for label, stub_name, arguments in scenarios:
            captured = []
            for bus, stubs in _fresh_pair(name):
                stub = getattr(stubs, stub_name, None)
                if stub is None:
                    captured.append(None)
                    continue
                with pytest.raises(DevilRuntimeError) as excinfo:
                    stub(*arguments)
                captured.append(str(excinfo.value))
                assert bus.trace == [], (label, "performed I/O")
            assert captured[0] == captured[1], label

    def test_out_of_range_write_messages(self):
        """The concrete §3.2 examples, message-exact in both strategies."""
        for name, stub_name, bad in (
                ("busmouse", "set_signature", 256),
                ("ide", "set_head", 16),
                ("cs4236", "set_mic_left_volume", 32),
                ("permedia2", "set_rect_width", 1 << 16)):
            messages = []
            for _, stubs in _fresh_pair(name):
                with pytest.raises(DevilRuntimeError) as excinfo:
                    getattr(stubs, stub_name)(bad)
                messages.append(str(excinfo.value))
            assert messages[0] == messages[1], name
            assert "outside range" in messages[0]

    def test_structure_member_errors_identical(self):
        for values, fragment in (
                ({"left_dac_attenuation": 9, "left_dac_mute": True},
                 "must provide every member"),
                ({"left_dac_attenuation": 9, "left_dac_mute": True,
                  "left_dac_pad": False, "bogus": 1},
                 "unknown member(s)")):
            messages = []
            for _, stubs in _fresh_pair("cs4236"):
                with pytest.raises(DevilRuntimeError) as excinfo:
                    stubs.set_left_dac_output(**values)
                messages.append(str(excinfo.value))
            assert messages[0] == messages[1]
            assert fragment in messages[0]

    def test_mode_violation_identical(self):
        messages = []
        for bus, stubs in _fresh_pair("pic8259"):
            with pytest.raises(DevilRuntimeError) as excinfo:
                stubs.set_irq_mask(0xFF)  # still in initialization mode
            messages.append(str(excinfo.value))
            assert bus.trace == []
        assert messages[0] == messages[1]
        assert "only addressable in mode" in messages[0]


# ---------------------------------------------------------------------------
# Interop and caching behaviour of the specializer itself
# ---------------------------------------------------------------------------


class TestSpecializedInstance:
    def test_generic_api_shares_state_with_specialized_stubs(self):
        bus, aux, bases = build_machine("busmouse")
        stubs = bind_stubs("busmouse", "specialize", bus, bases,
                           debug=True)
        stubs.get_mouse_state()
        # The generic (interpreted) member read sees the snapshot the
        # specialized structure getter took.
        assert stubs.get("dx") == stubs.get_dx() == 5
        stubs.set("signature", 0x5A)
        assert stubs.get_signature() == 0x5A

    def test_transaction_coalescing_identical(self):
        traces = []
        for kind in ("interpret", "specialize"):
            bus, aux, bases = build_machine("ide")
            stubs = bind_stubs("ide", kind, bus, bases, debug=True)
            with stubs.transaction():
                stubs.set_lba_mode(True)
                stubs.set_drive("MASTER")
                stubs.set_head(5)
            traces.append([(e.op, e.port, e.value, e.width)
                           for e in bus.trace])
        assert traces[0] == traces[1]
        assert len(traces[0]) == 1  # one coalesced device_reg write

    def test_factory_cached_per_key(self):
        model = shipped_spec("busmouse").model
        first = specialized_factory(model, {"base": MOUSE_BASE},
                                    debug=True, composition="cache")
        second = specialized_factory(model, {"base": MOUSE_BASE},
                                     debug=True, composition="cache")
        assert first is second
        other_debug = specialized_factory(model, {"base": MOUSE_BASE},
                                          debug=False,
                                          composition="cache")
        other_base = specialized_factory(model, {"base": 0x300},
                                         debug=True, composition="cache")
        assert other_debug is not first
        assert other_base is not first

    def test_addresses_folded_into_source(self):
        bus, aux, bases = build_machine("busmouse")
        stubs = bind_stubs("busmouse", "specialize", bus, bases,
                           debug=False)
        source = stubs._specialized_source
        assert hex(MOUSE_BASE + 1) in source  # sig_reg absolute port
        assert "def get_dx" in source
        assert "def set_config" in source

    def test_unknown_strategy_rejected(self):
        bus, aux, bases = build_machine("busmouse")
        with pytest.raises(DevilRuntimeError, match="execution strategy"):
            shipped_spec("busmouse").bind(bus, bases, strategy="jit")

    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_public_surface_identical(self, name):
        """Specialization must not add or remove public stubs."""
        bus_a, _, bases = build_machine(name)
        bus_b, _, _ = build_machine(name)
        interpreted = shipped_spec(name).bind(bus_a, bases)
        specialized = shipped_spec(name).bind(bus_b, bases,
                                              strategy="specialize")
        def surface(instance):
            return {attr for attr in vars(instance)
                    if attr.split("_", 1)[0] in ("get", "set",
                                                 "read", "write")}

        assert surface(interpreted) == surface(specialized)

    @pytest.mark.parametrize("name", SPEC_NAMES)
    @pytest.mark.parametrize("composition",
                             ["cache", "read-modify-write"])
    def test_composition_strategies_agree(self, name, composition):
        """The rmw ablation works identically under specialization."""
        outputs = []
        for kind in ("interpret", "specialize"):
            bus, aux, bases = build_machine(name)
            stubs = shipped_spec(name).bind(bus, bases, debug=False,
                                            composition=composition,
                                            strategy=kind)
            results = WORKLOADS[name](stubs, aux)
            outputs.append((results, list(bus.trace),
                            bus.accounting.snapshot()))
        assert outputs[0] == outputs[1]
