"""Cross-check harness: interpreted vs specialized vs generated stubs.

Three artifacts claim to implement one semantics — the interpreting
runtime (``strategy="interpret"``), the bind-time specializer
(``strategy="specialize"``) and the standalone generated Python module
(``emit_python()``).  For every shipped specification this module runs
the same driver workload (from :mod:`repro.obs.workloads`, shared with
the telemetry tests and the ``devilc trace`` CLI) against identical
simulated machines under all three and asserts byte-identical
:attr:`Bus.trace` I/O traces, identical :class:`IoAccounting` counters
and identical decoded results.

Debug-mode error parity is checked separately: interpreted and
specialized stubs must raise the *same* ``DevilRuntimeError`` text for
out-of-range writes, illegal enum symbols, structure-protocol violations
and missing/unknown structure members — and must perform no I/O while
doing so.
"""

import pytest

from repro.devil.errors import DevilRuntimeError
from repro.devil.specialize import specialized_factory
from repro.devil.types import EnumType, IntSetType, IntType
from repro.obs.workloads import (
    MOUSE_BASE,
    STRATEGIES,
    WORKLOADS,
    bind_stubs,
    build_machine,
    run_workload,
)
from repro.specs import SPEC_NAMES
from tests.conftest import shipped_spec

# ---------------------------------------------------------------------------
# Three-way trace / accounting / result parity
# ---------------------------------------------------------------------------


class TestThreeWayParity:
    @pytest.mark.parametrize("name", SPEC_NAMES)
    @pytest.mark.parametrize("debug", [False, True],
                             ids=["release", "debug"])
    def test_traces_accounting_results_identical(self, name, debug):
        outputs = {kind: run_workload(name, kind, debug)
                   for kind in STRATEGIES}
        reference_results, reference_trace, reference_acct = \
            outputs["interpret"]
        for kind in ("specialize", "generated"):
            results, trace, acct = outputs[kind]
            assert trace == reference_trace, kind
            assert acct == reference_acct, kind
            assert results == reference_results, kind

    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_debug_and_release_do_identical_io(self, name):
        """§3.2: debug checks are CPU-side only — in both strategies."""
        for kind in ("interpret", "specialize"):
            _, release_trace, release_acct = run_workload(
                name, kind, debug=False)
            _, debug_trace, debug_acct = run_workload(
                name, kind, debug=True)
            assert debug_trace == release_trace
            assert debug_acct == release_acct


# ---------------------------------------------------------------------------
# Debug-mode error parity (interpret vs specialize, message-exact)
# ---------------------------------------------------------------------------


def _fresh_pair(name: str, debug: bool = True):
    instances = []
    for kind in ("interpret", "specialize"):
        bus, aux, bases = build_machine(name)
        instances.append((bus,
                          bind_stubs(name, kind, bus, bases, debug)))
    return instances


def _error_scenarios(name: str):
    """Derive no-I/O error calls from the model, uniformly per spec.

    Every scenario raises before any bus access (encode failures,
    structure protocol, missing members), so it can run on a fresh
    machine without disturbing device state.
    """
    model = shipped_spec(name).model
    scenarios = []
    for variable in model.public_variables():
        if variable.memory or variable.structure is not None:
            continue
        registers_writable = all(
            model.registers[c.register].writable for c in variable.chunks)
        if not registers_writable:
            continue
        var_type = variable.type
        if isinstance(var_type, IntType):
            scenarios.append((f"set_{variable.name}:out-of-range",
                              f"set_{variable.name}",
                              (var_type.maximum + 1,)))
        elif isinstance(var_type, IntSetType):
            scenarios.append((f"set_{variable.name}:not-a-member",
                              f"set_{variable.name}",
                              (max(var_type.values) + 1,)))
        elif isinstance(var_type, EnumType):
            scenarios.append((f"set_{variable.name}:bad-symbol",
                              f"set_{variable.name}", ("__NOPE__",)))
    for structure in model.structures.values():
        member = structure.members[0]
        member_var = model.variables[member]
        if all(model.registers[c.register].readable
               for c in member_var.chunks):
            scenarios.append((f"get_{member}:before-fetch",
                              f"get_{member}", ()))
        break  # one structure-protocol case per spec is enough
    return scenarios


class TestDebugErrorParity:
    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_identical_errors_and_no_io(self, name):
        scenarios = _error_scenarios(name)
        assert scenarios, f"spec {name} produced no error scenarios"
        for label, stub_name, arguments in scenarios:
            captured = []
            for bus, stubs in _fresh_pair(name):
                stub = getattr(stubs, stub_name, None)
                if stub is None:
                    captured.append(None)
                    continue
                with pytest.raises(DevilRuntimeError) as excinfo:
                    stub(*arguments)
                captured.append(str(excinfo.value))
                assert bus.trace == [], (label, "performed I/O")
            assert captured[0] == captured[1], label

    def test_out_of_range_write_messages(self):
        """The concrete §3.2 examples, message-exact in both strategies."""
        for name, stub_name, bad in (
                ("busmouse", "set_signature", 256),
                ("ide", "set_head", 16),
                ("cs4236", "set_mic_left_volume", 32),
                ("permedia2", "set_rect_width", 1 << 16)):
            messages = []
            for _, stubs in _fresh_pair(name):
                with pytest.raises(DevilRuntimeError) as excinfo:
                    getattr(stubs, stub_name)(bad)
                messages.append(str(excinfo.value))
            assert messages[0] == messages[1], name
            assert "outside range" in messages[0]

    def test_structure_member_errors_identical(self):
        for values, fragment in (
                ({"left_dac_attenuation": 9, "left_dac_mute": True},
                 "must provide every member"),
                ({"left_dac_attenuation": 9, "left_dac_mute": True,
                  "left_dac_pad": False, "bogus": 1},
                 "unknown member(s)")):
            messages = []
            for _, stubs in _fresh_pair("cs4236"):
                with pytest.raises(DevilRuntimeError) as excinfo:
                    stubs.set_left_dac_output(**values)
                messages.append(str(excinfo.value))
            assert messages[0] == messages[1]
            assert fragment in messages[0]

    def test_mode_violation_identical(self):
        messages = []
        for bus, stubs in _fresh_pair("pic8259"):
            with pytest.raises(DevilRuntimeError) as excinfo:
                stubs.set_irq_mask(0xFF)  # still in initialization mode
            messages.append(str(excinfo.value))
            assert bus.trace == []
        assert messages[0] == messages[1]
        assert "only addressable in mode" in messages[0]


# ---------------------------------------------------------------------------
# Interop and caching behaviour of the specializer itself
# ---------------------------------------------------------------------------


class TestSpecializedInstance:
    def test_generic_api_shares_state_with_specialized_stubs(self):
        bus, aux, bases = build_machine("busmouse")
        stubs = bind_stubs("busmouse", "specialize", bus, bases,
                           debug=True)
        stubs.get_mouse_state()
        # The generic (interpreted) member read sees the snapshot the
        # specialized structure getter took.
        assert stubs.get("dx") == stubs.get_dx() == 5
        stubs.set("signature", 0x5A)
        assert stubs.get_signature() == 0x5A

    def test_transaction_coalescing_identical(self):
        traces = []
        for kind in ("interpret", "specialize"):
            bus, aux, bases = build_machine("ide")
            stubs = bind_stubs("ide", kind, bus, bases, debug=True)
            with stubs.transaction():
                stubs.set_lba_mode(True)
                stubs.set_drive("MASTER")
                stubs.set_head(5)
            traces.append([(e.op, e.port, e.value, e.width)
                           for e in bus.trace])
        assert traces[0] == traces[1]
        assert len(traces[0]) == 1  # one coalesced device_reg write

    def test_factory_cached_per_key(self):
        model = shipped_spec("busmouse").model
        first = specialized_factory(model, {"base": MOUSE_BASE},
                                    debug=True, composition="cache")
        second = specialized_factory(model, {"base": MOUSE_BASE},
                                     debug=True, composition="cache")
        assert first is second
        other_debug = specialized_factory(model, {"base": MOUSE_BASE},
                                          debug=False,
                                          composition="cache")
        other_base = specialized_factory(model, {"base": 0x300},
                                         debug=True, composition="cache")
        assert other_debug is not first
        assert other_base is not first

    def test_addresses_folded_into_source(self):
        bus, aux, bases = build_machine("busmouse")
        stubs = bind_stubs("busmouse", "specialize", bus, bases,
                           debug=False)
        source = stubs._specialized_source
        assert hex(MOUSE_BASE + 1) in source  # sig_reg absolute port
        assert "def get_dx" in source
        assert "def set_config" in source

    def test_unknown_strategy_rejected(self):
        bus, aux, bases = build_machine("busmouse")
        with pytest.raises(DevilRuntimeError, match="execution strategy"):
            shipped_spec("busmouse").bind(bus, bases, strategy="jit")

    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_public_surface_identical(self, name):
        """Specialization must not add or remove public stubs."""
        bus_a, _, bases = build_machine(name)
        bus_b, _, _ = build_machine(name)
        interpreted = shipped_spec(name).bind(bus_a, bases)
        specialized = shipped_spec(name).bind(bus_b, bases,
                                              strategy="specialize")
        def surface(instance):
            return {attr for attr in vars(instance)
                    if attr.split("_", 1)[0] in ("get", "set",
                                                 "read", "write")}

        assert surface(interpreted) == surface(specialized)

    @pytest.mark.parametrize("name", SPEC_NAMES)
    @pytest.mark.parametrize("composition",
                             ["cache", "read-modify-write"])
    def test_composition_strategies_agree(self, name, composition):
        """The rmw ablation works identically under specialization."""
        outputs = []
        for kind in ("interpret", "specialize"):
            bus, aux, bases = build_machine(name)
            stubs = shipped_spec(name).bind(bus, bases, debug=False,
                                            composition=composition,
                                            strategy=kind)
            results = WORKLOADS[name](stubs, aux)
            outputs.append((results, list(bus.trace),
                            bus.accounting.snapshot()))
        assert outputs[0] == outputs[1]
