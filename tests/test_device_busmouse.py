"""Behavioural tests for the Logitech busmouse model."""

import pytest

from repro.bus import BusError
from repro.devices.busmouse import BusmouseModel


class TestSignatureAndConfig:
    def test_signature_echoes(self):
        mouse = BusmouseModel()
        mouse.io_write(1, 0xA5, 8)
        assert mouse.io_read(1, 8) == 0xA5

    def test_config_stored(self):
        mouse = BusmouseModel()
        mouse.io_write(3, 0x91, 8)
        assert mouse.config == 0x91

    def test_only_8bit_accesses(self):
        mouse = BusmouseModel()
        with pytest.raises(BusError):
            mouse.io_read(1, 16)

    def test_config_port_not_readable(self):
        with pytest.raises(BusError):
            BusmouseModel().io_read(3, 8)


def read_nibbles(mouse):
    """Drive the Figure 2 protocol by hand."""
    values = {}
    for name, selector in (("x_low", 0x80), ("x_high", 0xA0),
                           ("y_low", 0xC0), ("y_high", 0xE0)):
        mouse.io_write(2, selector, 8)
        values[name] = mouse.io_read(0, 8)
    return values


class TestMotionProtocol:
    def test_nibble_decomposition(self):
        mouse = BusmouseModel()
        mouse.move(0x35, -0x12)
        nibbles = read_nibbles(mouse)
        assert nibbles["x_low"] == 0x5
        assert nibbles["x_high"] == 0x3
        assert nibbles["y_low"] == (-0x12) & 0xF
        assert nibbles["y_high"] & 0xF == ((-0x12) >> 4) & 0xF

    def test_buttons_in_y_high_top_bits(self):
        mouse = BusmouseModel()
        mouse.set_buttons(0b101)
        nibbles = read_nibbles(mouse)
        assert nibbles["y_high"] >> 5 == 0b101

    def test_counters_latched_during_cycle(self):
        mouse = BusmouseModel()
        mouse.interrupt_disabled = False
        mouse.move(5, 0)
        mouse.io_write(2, 0x80, 8)
        first = mouse.io_read(0, 8)
        mouse.move(3, 0)  # arrives mid-cycle
        mouse.io_write(2, 0x80, 8)
        second = mouse.io_read(0, 8)
        assert first == second == 5

    def test_interrupt_enable_closes_cycle(self):
        mouse = BusmouseModel()
        mouse.move(5, 0)
        read_nibbles(mouse)
        mouse.io_write(2, 0x00, 8)  # MSE_INT_ON
        mouse.move(2, 0)
        assert read_nibbles(mouse)["x_low"] == 2

    def test_pending_motion_accumulates_across_cycle(self):
        mouse = BusmouseModel()
        mouse.move(5, 0)
        read_nibbles(mouse)
        mouse.move(3, 0)       # lands while cycle open
        mouse.io_write(2, 0x00, 8)
        assert read_nibbles(mouse)["x_low"] == 3

    def test_interrupts_counted_when_enabled(self):
        mouse = BusmouseModel()
        mouse.io_write(2, 0x00, 8)
        mouse.move(1, 1)
        mouse.set_buttons(1)
        assert mouse.interrupts_raised == 2

    def test_no_interrupts_while_disabled(self):
        mouse = BusmouseModel()
        mouse.io_write(2, 0x10, 8)  # MSE_INT_OFF
        mouse.move(1, 1)
        assert mouse.interrupts_raised == 0

    def test_button_range_validated(self):
        with pytest.raises(ValueError):
            BusmouseModel().set_buttons(8)
