"""Driver-pair tests: C-style and Devil drivers must behave identically.

These are the functional underpinning of Tables 2–4: any throughput
comparison is meaningless unless both drivers provoke the same device
behaviour.  Each test runs the same scenario through both drivers on
fresh machines and compares outcomes (and, where the paper quantifies
it, the I/O-operation difference).
"""

import random

import numpy as np
import pytest

from repro.bus import Bus
from repro.devices.busmouse import REGION_SIZE as MOUSE_REGION
from repro.devices.busmouse import BusmouseModel
from repro.devices.ide import REGION_SIZE as IDE_REGION
from repro.devices.ide import IdeControlPort, IdeDiskModel, SECTOR_SIZE
from repro.devices.ne2000 import REGION_SIZE as NE_REGION
from repro.devices.ne2000 import (
    Ne2000DataPort,
    Ne2000Model,
    Ne2000ResetPort,
)
from repro.devices.permedia2 import REGION_SIZE as PM2_REGION
from repro.devices.permedia2 import Permedia2Aperture, Permedia2Model
from repro.devices.piix4 import REGION_SIZE as BM_REGION
from repro.devices.piix4 import Piix4Model
from repro.drivers import (
    CStyleBusmouseDriver,
    CStyleIdeDriver,
    CStyleNe2000Driver,
    CStylePermedia2Driver,
    DevilBusmouseDriver,
    DevilIdeDriver,
    DevilNe2000Driver,
    DevilPermedia2Driver,
)

MOUSE_DRIVERS = [CStyleBusmouseDriver, DevilBusmouseDriver]
IDE_DRIVERS = [CStyleIdeDriver, DevilIdeDriver]
NIC_DRIVERS = [CStyleNe2000Driver, DevilNe2000Driver]
GPU_DRIVERS = [CStylePermedia2Driver, DevilPermedia2Driver]


def mouse_machine(driver_cls):
    bus = Bus()
    mouse = BusmouseModel()
    bus.map_device(0x23C, MOUSE_REGION, mouse, "busmouse")
    return bus, mouse, driver_cls(bus, 0x23C)


class TestBusmouseDrivers:
    @pytest.mark.parametrize("driver_cls", MOUSE_DRIVERS)
    def test_probe(self, driver_cls):
        _, mouse, driver = mouse_machine(driver_cls)
        assert driver.probe()
        assert mouse.config == 0x90  # left in default mode

    @pytest.mark.parametrize("driver_cls", MOUSE_DRIVERS)
    def test_event_roundtrip(self, driver_cls):
        _, mouse, driver = mouse_machine(driver_cls)
        driver.enable_interrupts()
        mouse.move(-7, 3)
        mouse.set_buttons(0b010)
        assert driver.read_event() == (-7, 3, 0b010)

    @pytest.mark.parametrize("driver_cls", MOUSE_DRIVERS)
    def test_consecutive_events(self, driver_cls):
        _, mouse, driver = mouse_machine(driver_cls)
        driver.enable_interrupts()
        mouse.move(5, 5)
        assert driver.read_event()[:2] == (5, 5)
        mouse.move(-2, 1)
        assert driver.read_event()[:2] == (-2, 1)

    def test_same_io_operation_count(self):
        counts = []
        for driver_cls in MOUSE_DRIVERS:
            bus, mouse, driver = mouse_machine(driver_cls)
            driver.enable_interrupts()
            mouse.move(1, 2)
            driver.read_event()
            counts.append(bus.accounting.total_ops)
        # Figure 3c: the Devil mouse read compiles to the same 8+1 ops.
        assert counts[0] == counts[1]


def ide_machine(driver_cls, sectors=96):
    bus = Bus()
    disk = IdeDiskModel(total_sectors=sectors)
    rng = random.Random(1234)
    disk.store[:] = bytes(rng.randrange(256) for _ in range(len(disk.store)))
    bus.map_device(0x1F0, IDE_REGION, disk, "ide")
    bus.map_device(0x3F6, 1, IdeControlPort(disk), "ide-ctrl")
    memory = bytearray(1 << 17)
    busmaster = Piix4Model(disk, memory)
    bus.map_device(0xC000, BM_REGION, busmaster, "piix4")
    return bus, disk, memory, driver_cls(bus)


class TestIdeDrivers:
    @pytest.mark.parametrize("driver_cls", IDE_DRIVERS)
    @pytest.mark.parametrize("io_width", [16, 32])
    @pytest.mark.parametrize("sectors_per_irq", [1, 8])
    def test_pio_read(self, driver_cls, io_width, sectors_per_irq):
        _, disk, _, driver = ide_machine(driver_cls)
        if sectors_per_irq > 1:
            driver.set_multiple(sectors_per_irq)
        data = driver.read_sectors(5, 12, sectors_per_irq=sectors_per_irq,
                                   io_width=io_width)
        assert data == bytes(disk.store[5 * SECTOR_SIZE:17 * SECTOR_SIZE])

    @pytest.mark.parametrize("driver_cls", IDE_DRIVERS)
    def test_pio_write(self, driver_cls):
        _, disk, _, driver = ide_machine(driver_cls)
        payload = bytes(range(256)) * 8  # 4 sectors
        driver.write_sectors(20, payload)
        assert bytes(disk.store[20 * SECTOR_SIZE:24 * SECTOR_SIZE]) == \
            payload

    def test_devil_loop_matches_block(self):
        for use_block in (False, True):
            _, disk, _, driver = ide_machine(DevilIdeDriver)
            data = driver.read_sectors(0, 4, use_block=use_block)
            assert data == bytes(disk.store[:4 * SECTOR_SIZE])

    @pytest.mark.parametrize("driver_cls", IDE_DRIVERS)
    def test_dma_roundtrip(self, driver_cls):
        _, disk, memory, driver = ide_machine(driver_cls)
        read = driver.read_dma(memory, 8, 4, buffer_address=0x10000)
        assert read == bytes(disk.store[8 * SECTOR_SIZE:12 * SECTOR_SIZE])
        driver.write_dma(memory, 40, read, buffer_address=0x10000)
        assert bytes(disk.store[40 * SECTOR_SIZE:44 * SECTOR_SIZE]) == read

    @pytest.mark.parametrize("driver_cls", IDE_DRIVERS)
    def test_identify(self, driver_cls):
        _, disk, _, driver = ide_machine(driver_cls)
        blob = driver.identify()
        assert len(blob) == 512

    def test_interrupt_counts_equal(self):
        interrupt_counts = []
        for driver_cls in IDE_DRIVERS:
            _, disk, _, driver = ide_machine(driver_cls)
            driver.set_multiple(8)
            driver.read_sectors(0, 32, sectors_per_irq=8)
            interrupt_counts.append(disk.interrupts_raised)
        assert interrupt_counts[0] == interrupt_counts[1] == 4

    def test_devil_setup_costs_three_extra_ops(self):
        """Table 2: 7 + 3 operations to prepare a command."""
        operation_counts = []
        for driver_cls in IDE_DRIVERS:
            bus, _, _, driver = ide_machine(driver_cls)
            before = bus.accounting.total_ops
            driver._issue(
                "READ_SECTORS" if driver_cls is DevilIdeDriver else 0x20,
                0, 1)
            operation_counts.append(bus.accounting.total_ops - before)
            # Drain the pending command so the machine is quiescent.
        assert operation_counts == [7, 10]

    def test_devil_dma_is_14_vs_20_ops(self):
        """Table 2's DMA row: 14 standard operations, 20 Devil."""
        operation_counts = []
        for driver_cls in IDE_DRIVERS:
            bus, _, memory, driver = ide_machine(driver_cls)
            before = bus.accounting.total_ops
            driver.read_dma(memory, 0, 2, buffer_address=0x10000)
            operation_counts.append(bus.accounting.total_ops - before)
        assert operation_counts == [14, 20]


def nic_machine(driver_cls):
    bus = Bus()
    nic = Ne2000Model()
    bus.map_device(0x300, NE_REGION, nic, "ne2000")
    bus.map_device(0x310, 2, Ne2000DataPort(nic), "ne2000-data")
    bus.map_device(0x31F, 1, Ne2000ResetPort(nic), "ne2000-reset")
    return bus, nic, driver_cls(bus)


class TestNe2000Drivers:
    MAC = b"\x02\xAA\xBB\xCC\xDD\xEE"

    @pytest.mark.parametrize("driver_cls", NIC_DRIVERS)
    def test_init_and_mac(self, driver_cls):
        _, nic, driver = nic_machine(driver_cls)
        driver.reset()
        driver.init(self.MAC)
        assert nic.running
        assert driver.read_mac() == self.MAC

    @pytest.mark.parametrize("driver_cls", NIC_DRIVERS)
    def test_transmit(self, driver_cls):
        _, nic, driver = nic_machine(driver_cls)
        driver.reset()
        driver.init(self.MAC)
        frame = bytes((i * 5) & 0xFF for i in range(200))
        driver.send_frame(frame)
        assert nic.transmitted == [frame]

    @pytest.mark.parametrize("driver_cls", NIC_DRIVERS)
    def test_receive_multiple(self, driver_cls):
        _, nic, driver = nic_machine(driver_cls)
        driver.reset()
        driver.init(self.MAC)
        first = b"A" * 60
        second = b"B" * 700
        nic.receive_frame(first)
        nic.receive_frame(second)
        frames = driver.poll_receive()
        assert [f[:len(first)] for f in frames][0] == first
        assert frames[1][:len(second)] == second

    @pytest.mark.parametrize("driver_cls", NIC_DRIVERS)
    def test_receive_empty_ring(self, driver_cls):
        _, _, driver = nic_machine(driver_cls)
        driver.reset()
        driver.init(self.MAC)
        assert driver.poll_receive() == []

    def test_device_state_identical_after_init(self):
        states = []
        for driver_cls in NIC_DRIVERS:
            _, nic, driver = nic_machine(driver_cls)
            driver.reset()
            driver.init(self.MAC)
            states.append((nic.page_start, nic.page_stop, nic.boundary,
                           nic.current, nic.tx_page_start, nic.rcr,
                           nic.tcr, nic.dcr, nic.imr, nic.running))
        assert states[0] == states[1]


def gpu_machine(driver_cls):
    bus = Bus()
    gpu = Permedia2Model(width=256, height=192)
    bus.map_device(0xF000, PM2_REGION, gpu, "permedia2")
    bus.map_device(0xF800, 1, Permedia2Aperture(gpu), "permedia2-fb")
    return bus, gpu, driver_cls(bus, 0xF000, 0xF800)


class TestPermedia2Drivers:
    @pytest.mark.parametrize("driver_cls", GPU_DRIVERS)
    def test_fill(self, driver_cls):
        _, gpu, driver = gpu_machine(driver_cls)
        driver.set_mode(16, 256, 192)
        driver.fill_rect(10, 20, 30, 40, 0x1234)
        assert gpu.framebuffer[20, 10] == 0x1234
        assert gpu.framebuffer[59, 39] == 0x1234
        assert gpu.pixels_filled == 1200

    @pytest.mark.parametrize("driver_cls", GPU_DRIVERS)
    def test_copy(self, driver_cls):
        _, gpu, driver = gpu_machine(driver_cls)
        driver.set_mode(8, 256, 192)
        driver.fill_rect(100, 100, 20, 20, 0x55)
        driver.screen_copy(100, 100, 10, 10, 20, 20)
        assert np.all(gpu.framebuffer[10:30, 10:30] == 0x55)

    @pytest.mark.parametrize("driver_cls", GPU_DRIVERS)
    def test_software_pixels(self, driver_cls):
        _, gpu, driver = gpu_machine(driver_cls)
        driver.set_mode(32, 256, 192)
        driver.write_pixels(256, [1, 2, 3])
        assert driver.read_pixels(256, 3) == [1, 2, 3]

    def test_framebuffers_identical(self):
        frames = []
        for driver_cls in GPU_DRIVERS:
            _, gpu, driver = gpu_machine(driver_cls)
            driver.set_mode(16, 256, 192)
            driver.fill_rect(0, 0, 50, 50, 0xAAAA)
            driver.screen_copy(0, 0, 60, 60, 50, 50)
            frames.append(gpu.framebuffer.copy())
        assert np.array_equal(frames[0], frames[1])

    def test_devil_costs_two_extra_ops_per_primitive(self):
        """Tables 3/4: 3(#w)+17 against 3(#w)+15."""
        per_primitive = []
        for driver_cls in GPU_DRIVERS:
            bus, _, driver = gpu_machine(driver_cls)
            driver.set_mode(8, 256, 192)
            before = bus.accounting.total_ops
            driver.fill_rect(0, 0, 4, 4, 1)
            per_primitive.append(bus.accounting.total_ops - before)
        assert per_primitive[1] - per_primitive[0] == 2

    def test_no_fifo_overflow(self):
        for driver_cls in GPU_DRIVERS:
            _, gpu, driver = gpu_machine(driver_cls)
            gpu.drain_per_poll = 3
            driver.set_mode(8, 256, 192)
            for index in range(50):
                driver.fill_rect(index % 100, 0, 2, 2, index)
            assert gpu.fifo_overflows == 0
