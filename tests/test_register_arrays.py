"""Tests for parameterized port offsets (the register-array feature).

§2.2 lists "arrays, register constructors" among Devil's features; a
constructor whose *port offset* depends on its parameter (``register
cell(i : int{0..5}) = base @ 1 + i``) describes a bank of identical
registers at consecutive addresses — the NE2000's PAR0..PAR5 or a
DMA controller's per-channel registers.
"""

import pytest

from repro.bus import Bus
from repro.devil.compiler import compile_spec
from repro.devil.errors import DevilCheckError
from repro.devil.parser import parse
from repro.devil.printer import print_device

BANKED = """
device banked (base : bit[8] port @ {0..4})
{
    register mode_reg = write base @ 0 : bit[8];
    private variable bank = mode_reg[0] : int(1);
    variable pad = mode_reg[7..1] : int(7);

    register cell(i : int{0..3}) = base @ 1 + i, pre {bank = 0} : bit[8];
    register cell0 = cell(0);
    register cell1 = cell(1);
    register cell2 = cell(2);
    register cell3 = cell(3);
    variable v0 = cell0 : int(8);
    variable v1 = cell1 : int(8);
    variable v2 = cell2 : int(8);
    variable v3 = cell3 : int(8);
}
"""


class Ram:
    def __init__(self):
        self.cells = [0] * 8

    def io_read(self, offset, width):
        return self.cells[offset]

    def io_write(self, offset, value, width):
        self.cells[offset] = value


class TestResolution:
    def test_instances_land_at_consecutive_offsets(self):
        spec = compile_spec(BANKED)
        offsets = [spec.model.registers[f"cell{i}"].read_port[1]
                   for i in range(4)]
        assert offsets == [1, 2, 3, 4]

    def test_pre_actions_still_substituted(self):
        spec = compile_spec(BANKED)
        (action,) = spec.model.registers["cell2"].pre_actions
        assert (action.target, action.value) == ("bank", 0)

    def test_bare_parameter_offset(self):
        source = BANKED.replace("base @ 1 + i", "base @ i") \
                       .replace("port @ {0..4}", "port @ {0..3}") \
                       .replace("write base @ 0", "write base @ 0")
        # cell(0) now collides with mode_reg at offset 0, but their
        # pre-actions differ, so the overlap rule admits it.
        spec = compile_spec(source)
        assert spec.model.registers["cell0"].read_port == ("base", 0)

    def test_offsets_outside_port_range_rejected(self):
        source = BANKED.replace("port @ {0..4}", "port @ {0..3}")
        with pytest.raises(DevilCheckError, match="falls outside"):
            compile_spec(source)

    def test_unknown_offset_parameter_rejected(self):
        source = BANKED.replace("base @ 1 + i,", "base @ 1 + j,")
        with pytest.raises(DevilCheckError, match="not a parameter"):
            compile_spec(source)

    def test_uninstantiated_family_member_is_omission(self):
        source = BANKED.replace(
            "    register cell3 = cell(3);\n", "").replace(
            "    variable v3 = cell3 : int(8);\n", "")
        with pytest.raises(DevilCheckError, match="never used"):
            compile_spec(source)


class TestExecution:
    def test_writes_route_to_the_right_bank_cell(self):
        spec = compile_spec(BANKED)
        bus = Bus()
        ram = Ram()
        bus.map_device(0x40, 8, ram)
        device = spec.bind(bus, {"base": 0x40})
        for index in range(4):
            device.set(f"v{index}", 0x10 + index)
        assert ram.cells[1:5] == [0x10, 0x11, 0x12, 0x13]

    def test_c_backend_folds_concrete_offsets(self):
        header = compile_spec(BANKED).emit_c(prefix="bk")
        for offset in range(1, 5):
            assert f"d->port_base + {offset}" in header

    def test_python_backend_agrees(self):
        spec = compile_spec(BANKED)
        namespace: dict = {}
        exec(compile(spec.emit_python(), "gen.py", "exec"), namespace)
        (cls,) = [v for k, v in namespace.items() if k.endswith("Stubs")]
        bus_a, bus_b = Bus(tracing=True), Bus(tracing=True)
        bus_a.map_device(0, 8, Ram())
        bus_b.map_device(0, 8, Ram())
        generated = cls(bus_a, 0)
        interpreted = spec.bind(bus_b, {"base": 0}, debug=False)
        for index in range(4):
            getattr(generated, f"set_v{index}")(index)
            interpreted.set(f"v{index}", index)
        assert bus_a.trace == bus_b.trace


class TestSyntax:
    def test_printer_roundtrip(self):
        from tests.test_printer import normalize
        first = parse(BANKED)
        assert normalize(parse(print_device(first))) == normalize(first)

    def test_constant_plus_param_and_param_plus_constant(self):
        flipped = BANKED.replace("base @ 1 + i", "base @ i + 1")
        spec = compile_spec(flipped)
        assert spec.model.registers["cell3"].read_port == ("base", 4)
