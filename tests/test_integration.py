"""End-to-end integration scenarios across the whole stack."""

import pytest

from repro.devil.errors import DevilRuntimeError


class TestMouseSession:
    def test_full_interrupt_loop(self, mouse_machine):
        bus, mouse, device = mouse_machine
        device.set_config("CONFIGURATION")
        device.set_signature(0xA5)
        assert device.get_signature() == 0xA5
        device.set_config("DEFAULT_MODE")
        device.set_interrupt("ENABLE")

        events = [(3, 1, 0), (-2, -2, 4), (0, 9, 7)]
        for dx, dy, buttons in events:
            mouse.move(dx, dy)
            mouse.set_buttons(buttons)
            state = device.get_mouse_state()
            assert (state["dx"], state["dy"], state["buttons"]) == \
                (dx, dy, buttons)
            device.set_interrupt("ENABLE")

    def test_member_access_protocol_enforced(self, mouse_machine):
        _, _, device = mouse_machine
        with pytest.raises(DevilRuntimeError):
            device.get_buttons()


class TestDiskSession:
    def test_pio_and_dma_interleaved(self, ide_machine):
        bus, disk, busmaster, memory, ide_dev, bm_dev = ide_machine
        # PIO write, DMA read back.
        payload = bytes((7 * i) & 0xFF for i in range(1024))
        ide_dev.set_srst(False)
        ide_dev.set_irq_disabled(False)
        ide_dev.set_lba_mode(True)
        ide_dev.set_drive("MASTER")
        ide_dev.set_head(0)
        ide_dev.set_sector_count(2)
        ide_dev.set_lba_low(10)
        ide_dev.set_lba_mid(0)
        ide_dev.set_lba_high(0)
        ide_dev.set_command("WRITE_SECTORS")
        words = [payload[i] | (payload[i + 1] << 8)
                 for i in range(0, 512, 2)]
        for _ in range(2):
            assert ide_dev.get_ide_drq()
            ide_dev.write_ide_data_block(words)
            words = [payload[512 + i] | (payload[512 + i + 1] << 8)
                     for i in range(0, 512, 2)] if _ == 0 else words
        assert bytes(disk.store[10 * 512:12 * 512]) == payload

        memory[0x8000:0x8008] = (0x2000).to_bytes(4, "little") + \
            (1024).to_bytes(2, "little") + (0x8000).to_bytes(2, "little")
        ide_dev.set_sector_count(2)
        ide_dev.set_lba_low(10)
        ide_dev.set_command("READ_DMA")
        bm_dev.set_bm_irq(True)
        bm_dev.set_prd_pointer(0x8000)
        bm_dev.set_dma_direction("TO_MEMORY")
        bm_dev.set_dma_start(True)
        assert bm_dev.get_bm_irq()
        assert bytes(memory[0x2000:0x2400]) == payload

    def test_error_path_surfaces(self, ide_machine):
        _, disk, _, _, ide_dev, _ = ide_machine
        ide_dev.set_sector_count(1)
        ide_dev.set_lba_low(0)
        ide_dev.set_lba_mid(0)
        ide_dev.set_lba_high(0)
        ide_dev.set_head(0)
        disk.nsect = 0  # force a SET_MULTIPLE abort
        ide_dev.set_command("SET_MULTIPLE")
        assert ide_dev.get_ide_err()
        assert ide_dev.get_ide_error() == 0x04


class TestNicLoopback:
    def test_transmit_appears_in_ring_when_looped(self, nic_machine):
        bus, nic, device = nic_machine
        device.set_st("START")
        frame = bytes(range(64))
        # Write frame to tx area via remote DMA.
        device.set_remote_byte_count(len(frame))
        device.set_remote_start_address(0x4000)
        device.set_rd("REMOTE_WRITE")
        words = [frame[i] | (frame[i + 1] << 8)
                 for i in range(0, len(frame), 2)]
        device.write_dma_data_block(words)
        device.set_tx_page_start(0x40)
        device.set_tx_byte_count(len(frame))
        device.set_txp("TRANSMIT")
        # Loop it back in as a received frame.
        (sent,) = nic.transmitted
        assert nic.receive_frame(sent)
        status = device.get_interrupt_status()
        assert status["packet_received"]
        assert status["packet_transmitted"]

    def test_volatile_status_snapshot_is_consistent(self, nic_machine):
        _, nic, device = nic_machine
        device.set_st("START")
        nic.receive_frame(b"p" * 60)
        snapshot = device.get_interrupt_status()
        nic.isr = 0  # device state moves on
        # Members still reflect the grouped read.
        assert device.get_packet_received() is True
        assert snapshot["packet_received"] is True


class TestGraphicsSession:
    def test_fill_copy_readback(self, gpu_machine):
        bus, gpu, device = gpu_machine
        device.set_pixel_depth("BPP32")
        device.set_fb_write_mask(0xFFFFFFFF)
        device.set_logical_op(3)
        device.set_scissor_min(scissor_min_x=0, scissor_min_y=0)
        device.set_scissor_max(scissor_max_x=128, scissor_max_y=96)
        device.set_window_origin(window_x=0, window_y=0)
        device.set_block_color(0xDEADBEEF)
        device.set_rect_x(8)
        device.set_rect_y(8)
        device.set_rect_width(16)
        device.set_rect_height(16)
        device.set_render("FILL_RECT")
        device.set_copy_offset(copy_dx=8 - 40, copy_dy=8 - 40)
        device.set_rect_x(40)
        device.set_rect_y(40)
        device.set_render("COPY_RECT")
        device.set_fb_address(40 * 128 + 40)
        assert device.read_fb_data_block(4) == [0xDEADBEEF] * 4

    def test_fifo_protocol(self, gpu_machine):
        _, gpu, device = gpu_machine
        gpu.drain_per_poll = 8
        polls = 0
        for _ in range(20):
            while device.get_fifo_space() < 2:
                polls += 1
            device.set_block_color(1)
            device.set_render("SYNC_CMD")
        assert gpu.fifo_overflows == 0


class TestCrossDeviceMachine:
    def test_one_bus_many_devices(self):
        """A PC-like machine: mouse + PIC + IDE on one bus."""
        from repro.bus import Bus
        from repro.devices.busmouse import BusmouseModel
        from repro.devices.ide import IdeControlPort, IdeDiskModel
        from repro.devices.pic8259 import Pic8259Model
        from tests.conftest import shipped_spec

        bus = Bus()
        mouse = BusmouseModel()
        pic = Pic8259Model()
        disk = IdeDiskModel(total_sectors=16)
        bus.map_device(0x23C, 4, mouse, "busmouse")
        bus.map_device(0x20, 2, pic, "pic")
        bus.map_device(0x1F0, 8, disk, "ide")
        bus.map_device(0x3F6, 1, IdeControlPort(disk), "ide-ctrl")

        mouse_dev = shipped_spec("busmouse").bind(bus, {"base": 0x23C})
        pic_dev = shipped_spec("pic8259").bind(bus, {"base": 0x20})
        ide_dev = shipped_spec("ide").bind(
            bus, {"cmd": 0x1F0, "data": 0x1F0, "data32": 0x1F0,
                  "ctrl": 0x3F6})

        pic_dev.set_init(addr_vector=0, ltim="EDGE", adi="INTERVAL8",
                         sngl="SINGLE", ic4=True, vector_base=0x20,
                         slaves=0, sfnm=False, buffered=False,
                         master="BUF_SLAVE", aeoi=False,
                         microprocessor="X8086")
        # The ICW sequence is complete: the controller is operational,
        # and the spec's mode discipline requires saying so before the
        # OCW registers become addressable.
        pic_dev.set_device_mode("operation")
        pic_dev.set_irq_mask(0x00)

        # Mouse motion raises IRQ; CPU acknowledges through the PIC.
        mouse_dev.set_interrupt("ENABLE")
        mouse.move(2, 2)
        pic.raise_irq(5)
        assert pic.acknowledge() == 0x25
        state = mouse_dev.get_mouse_state()
        assert (state["dx"], state["dy"]) == (2, 2)
        pic_dev.set_eoi(eoi_kind="SPECIFIC_EOI", eoi_level=5)
        assert pic.isr == 0

        # Disk interrupt while the mouse is quiet.
        ide_dev.set_sector_count(1)
        ide_dev.set_lba_low(0)
        ide_dev.set_lba_mid(0)
        ide_dev.set_lba_high(0)
        ide_dev.set_head(0)
        ide_dev.set_command("READ_SECTORS")
        pic.raise_irq(6)
        assert pic.acknowledge() == 0x26
        ide_dev.read_ide_data_block(256)
        pic_dev.set_eoi(eoi_kind="SPECIFIC_EOI", eoi_level=6)
