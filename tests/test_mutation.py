"""Tests for the mutation-analysis machinery (Table 1)."""

import pytest

from repro.mutation import (
    MutantCaps,
    MutationSite,
    analyze_target,
    c_target,
    cdevil_target,
    devil_target,
    format_table,
    mutants_for_site,
)
from repro.mutation.analysis import TargetOutcome
from repro.mutation.corpus import (
    BUSMOUSE_C,
    BUSMOUSE_CDEVIL,
    mutation_regions,
)
from repro.mutation.rules import alphabet_for
from repro.specs import load_source
from tests.conftest import shipped_spec

QUICK = MutantCaps.quick(6)


class TestRules:
    def test_number_mutants_are_digit_edits(self):
        site = MutationSite("number", "121", 0, 1)
        tokens = {m.mutated_token for m in mutants_for_site(site)}
        assert "21" in tokens        # removal (the paper's example)
        assert "1211" in tokens      # insertion
        assert "191" in tokens       # replacement
        assert all(set(t) <= set("0123456789") for t in tokens)

    def test_two_digit_number_population_size(self):
        """The paper: a 2-digit decimal yields 50 mutants (2 removals,
        30 insertions, 18 replacements) before dedup."""
        site = MutationSite("number", "12", 0, 1)
        population = mutants_for_site(site)
        # After dedup of colliding edits the count is slightly lower.
        assert 40 <= len(population) <= 50

    def test_hex_prefix_protected(self):
        site = MutationSite("number", "0x3c", 0, 1)
        tokens = {m.mutated_token for m in mutants_for_site(site)}
        assert all(t.startswith("0x") for t in tokens)

    def test_identifier_alphabet_matches_case(self):
        upper = MutationSite("ident", "NEUTRAL", 0, 1)
        lower = MutationSite("ident", "sig_reg", 0, 1)
        assert alphabet_for(upper).isupper() or "_" in alphabet_for(upper)
        assert alphabet_for(lower).islower() or "_" in alphabet_for(lower)

    def test_bitpattern_alphabet(self):
        site = MutationSite("bitpattern", "1001000.", 0, 1)
        assert set(alphabet_for(site)) == set("01.*-")

    def test_deterministic_sampling(self):
        site = MutationSite("ident", "configuration_word", 0, 1)
        first = [m.mutated_token for m in mutants_for_site(site, 10)]
        second = [m.mutated_token for m in mutants_for_site(site, 10)]
        assert first == second
        assert len(first) == 10

    def test_apply_rewrites_exact_span(self):
        site = MutationSite("number", "42", 4, 1)
        mutant = mutants_for_site(site)[0]
        source = "abc 42 def"
        mutated = mutant.apply(source)
        assert mutated.startswith("abc ") and mutated.endswith(" def")


class TestRegions:
    def test_marker_extraction(self):
        regions = mutation_regions(BUSMOUSE_C)
        assert len(regions) == 1
        start, end = regions[0]
        assert "MSE_DATA_PORT" in BUSMOUSE_C[start:end]

    def test_unterminated_region(self):
        with pytest.raises(ValueError):
            mutation_regions("/*MUTATE*/ no end")


class TestTargets:
    def test_c_target_sites_exclude_keywords(self):
        target = c_target("busmouse", BUSMOUSE_C)
        texts = {site.text for site in target.sites}
        assert "int" not in texts
        assert "MSE_DATA_PORT" in texts
        assert "0x23c" in texts

    def test_c_classifier_detects_bad_identifier(self):
        target = c_target("busmouse", BUSMOUSE_C)
        mutated = BUSMOUSE_C.replace("dy |= (buttons & 0xf) << 4;",
                                     "dz |= (buttons & 0xf) << 4;")
        assert target.classify(mutated) == "detected"

    def test_c_classifier_misses_constant_change(self):
        target = c_target("busmouse", BUSMOUSE_C)
        mutated = BUSMOUSE_C.replace("0xc0", "0xc8")
        assert target.classify(mutated) == "undetected"

    def test_c_interface_rename_detected(self):
        target = c_target("busmouse", BUSMOUSE_C)
        mutated = BUSMOUSE_C.replace("void mouse_interrupt(",
                                     "void mouse_interupt(")
        assert target.classify(mutated) == "detected"

    def test_devil_classifier_detects_overlap(self):
        source = load_source("busmouse")
        target = devil_target("busmouse", source)
        mutated = source.replace("index = index_reg[6..5]",
                                 "index = index_reg[7..5]")
        assert target.classify(mutated) == "detected"

    def test_devil_classifier_detects_renamed_interface(self):
        source = load_source("busmouse")
        target = devil_target("busmouse", source)
        mutated = source.replace("variable dy =", "variable dz =")
        assert target.classify(mutated) == "detected"

    def test_devil_classifier_misses_forced_value_change(self):
        source = load_source("busmouse")
        target = devil_target("busmouse", source)
        mutated = source.replace("'1001000.'", "'0001000.'")
        assert target.classify(mutated) == "undetected"

    def test_devil_syntax_break_is_invalid(self):
        source = load_source("busmouse")
        target = devil_target("busmouse", source)
        assert target.classify(
            source.replace("device logitech_busmouse (",
                           "device logitech_busmouse ((")) == "invalid"

    def test_cdevil_constant_range_check(self):
        target = cdevil_target("busmouse", BUSMOUSE_CDEVIL,
                               [(shipped_spec("busmouse").model, "bm")])
        # signature is int(8): 0xa5 legal, 0xa55 out of range -> the
        # §3.2 compile-time check of the generated interface fires.
        assert target.classify(
            BUSMOUSE_CDEVIL.replace("bm_set_signature(0xa5)",
                                    "bm_set_signature(0xa55)")) == \
            "detected"
        assert target.classify(
            BUSMOUSE_CDEVIL.replace("bm_set_signature(0xa5)",
                                    "bm_set_signature(0xa4)")) == \
            "undetected"

    def test_cdevil_stub_rename_detected(self):
        target = cdevil_target("busmouse", BUSMOUSE_CDEVIL,
                               [(shipped_spec("busmouse").model, "bm")])
        mutated = BUSMOUSE_CDEVIL.replace("bm_get_dy()", "bm_get_dz()")
        assert target.classify(mutated) == "detected"


class TestAnalysis:
    def test_busmouse_c_row_statistics(self):
        outcome = analyze_target(c_target("busmouse", BUSMOUSE_C), QUICK)
        assert outcome.sites > 50
        assert outcome.mutants_per_site > 1
        assert 0 < outcome.sites_with_undetected < outcome.sites

    def test_devil_spec_nearly_always_detected(self):
        """The paper's headline: 'mutation errors in Devil
        specifications are nearly always detected'."""
        outcome = analyze_target(
            devil_target("busmouse", load_source("busmouse")), QUICK)
        assert outcome.undetected_per_site < 1.0

    def test_devil_beats_c(self):
        c_outcome = analyze_target(c_target("busmouse", BUSMOUSE_C),
                                   QUICK)
        devil_outcome = analyze_target(
            devil_target("busmouse", load_source("busmouse")), QUICK)
        c_rate = c_outcome.total_undetected / c_outcome.total_mutants
        devil_rate = devil_outcome.total_undetected / \
            devil_outcome.total_mutants
        assert devil_rate < c_rate / 3

    def test_semantically_equal_mutants_excluded(self):
        """'03' for '3' is not a mutant: same value."""
        outcome = analyze_target(c_target("busmouse", BUSMOUSE_C), QUICK)
        for site_outcome in outcome.site_outcomes:
            for survivor in site_outcome.survivors:
                assert "-> '0" not in survivor or \
                    site_outcome.site.text.lstrip("0") != \
                    survivor.split("'")[3].lstrip("0")

    def test_merged_rows(self):
        first = analyze_target(c_target("busmouse", BUSMOUSE_C), QUICK)
        merged = first.merged_with(first, "double")
        assert merged.sites == 2 * first.sites
        assert merged.total_mutants == 2 * first.total_mutants

    def test_format_table_renders(self):
        from repro.mutation.analysis import DeviceRows
        outcome = analyze_target(c_target("busmouse", BUSMOUSE_C), QUICK)
        devil_outcome = analyze_target(
            devil_target("busmouse", load_source("busmouse")), QUICK)
        cdevil_outcome = analyze_target(
            cdevil_target("busmouse", BUSMOUSE_CDEVIL,
                          [(shipped_spec("busmouse").model, "bm")]),
            QUICK)
        rows = DeviceRows("Busmouse", outcome, devil_outcome,
                          cdevil_outcome)
        rendered = format_table([rows])
        assert "Devil+CDevil" in rendered
        assert rows.ratio_combined() > 0

    def test_rejected_baseline_refused(self):
        broken = BUSMOUSE_C.replace("dy |=", "dz |=")
        with pytest.raises(ValueError):
            analyze_target(c_target("busmouse", broken), QUICK)


class TestBitopsSurvey:
    def test_c_fragments_are_bitop_heavy(self):
        from repro.mutation.bitops_survey import run_survey
        reports = {r.name: r for r in run_survey()}
        for name in ("busmouse (C)", "ide (C)", "ne2000 (C)"):
            assert reports[name].line_fraction > 0.10

    def test_cdevil_reduces_bitops(self):
        from repro.mutation.bitops_survey import run_survey
        reports = {r.name: r for r in run_survey()}
        assert reports["ne2000 (CDevil)"].bitop_tokens < \
            reports["ne2000 (C)"].bitop_tokens

    def test_format_survey(self):
        from repro.mutation.bitops_survey import format_survey, run_survey
        assert "Fraction" in format_survey(run_survey())
