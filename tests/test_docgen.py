"""Tests for the Markdown datasheet generator."""

import pytest

from repro.devil.cli import main
from repro.specs import SPEC_NAMES
from tests.conftest import shipped_spec


class TestDatasheets:
    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_every_spec_renders(self, name):
        doc = shipped_spec(name).emit_doc()
        assert doc.startswith("# Device ")
        assert "## Register map" in doc
        assert "## Functional interface" in doc

    def test_busmouse_bit_layout(self):
        doc = shipped_spec("busmouse").emit_doc()
        # The cr row must show the forced 1001000 bits and config.
        cr_row = [line for line in doc.splitlines()
                  if line.startswith("| `cr` |")][0]
        assert "config" in cr_row
        assert cr_row.count("1") >= 2  # forced bits visible

    def test_pre_actions_listed(self):
        doc = shipped_spec("busmouse").emit_doc()
        assert "`x_high` pre-action: `index = 1`" in doc

    def test_private_variables_segregated(self):
        doc = shipped_spec("busmouse").emit_doc()
        assert "Private (hidden from the interface): `index`." in doc
        interface = doc.split("## Functional interface")[1]
        table_rows = [line for line in interface.splitlines()
                      if line.startswith("| `")]
        assert not any("| `index` |" in row for row in table_rows)

    def test_enum_values_listed(self):
        doc = shipped_spec("busmouse").emit_doc()
        assert "`CONFIGURATION` => '1'" in doc

    def test_modes_section(self):
        doc = shipped_spec("pic8259").emit_doc()
        assert "## Operating modes" in doc
        assert "reset state `initialization`" in doc
        icw2_row = [line for line in doc.splitlines()
                    if line.startswith("| `icw2` |")][0]
        assert "initialization" in icw2_row

    def test_conditional_serialization_documented(self):
        doc = shipped_spec("pic8259").emit_doc()
        assert "`icw3` (if `sngl` == 0x0)" in doc

    def test_trigger_neutral_documented(self):
        doc = shipped_spec("ne2000").emit_doc()
        st_row = [line for line in doc.splitlines()
                  if line.startswith("| `st` |")][0]
        assert "trigger (neutral 0x0)" in st_row

    def test_block_stubs_documented(self):
        doc = shipped_spec("ide").emit_doc()
        assert "`*_ide_data_block`" in doc

    def test_split_read_write_ports_rendered(self):
        doc = shipped_spec("ide").emit_doc()
        error_row = [line for line in doc.splitlines()
                     if line.startswith("| `error_reg` |")][0]
        assert "| R |" in error_row


class TestCli:
    def test_doc_subcommand(self, tmp_path, capsys):
        assert main(["doc", "src/repro/specs/pic8259.devil"]) == 0
        output = capsys.readouterr().out
        assert "# Device `pic8259`" in output
        assert "memory cell" in output  # the public device_mode cell

    def test_doc_to_file(self, tmp_path):
        out = tmp_path / "sheet.md"
        assert main(["doc", "src/repro/specs/busmouse.devil",
                     "-o", str(out)]) == 0
        assert "## Register map" in out.read_text()
