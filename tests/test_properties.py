"""Property-based tests (hypothesis) for the core data structures.

These cover the algebraic invariants the unit tests only spot-check:
mask classification laws, bit extract/insert round-trips, type
encode/decode round-trips, lexer totality over generated specs, and
stub write-read consistency on randomly generated register layouts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bus import Bus
from repro.devil.compiler import compile_spec
from repro.devil.mask import Mask, extract_bits, insert_bits
from repro.devil.types import EnumDirection, EnumItem, EnumType, IntType

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

mask_patterns = st.text(alphabet="01.*-", min_size=1, max_size=32)
bytes8 = st.integers(min_value=0, max_value=255)


@st.composite
def bit_fields(draw):
    msb = draw(st.integers(min_value=0, max_value=31))
    lsb = draw(st.integers(min_value=0, max_value=msb))
    return msb, lsb


# ---------------------------------------------------------------------------
# Mask algebra laws
# ---------------------------------------------------------------------------


class TestMaskProperties:
    @given(mask_patterns)
    def test_partition_of_bits(self, pattern):
        """variable + irrelevant + forced partition the register."""
        mask = Mask.parse(pattern)
        all_bits = (1 << mask.width) - 1
        assert (mask.variable_bits | mask.irrelevant_bits
                | mask.forced_bits) == all_bits
        assert mask.variable_bits & mask.irrelevant_bits == 0
        assert mask.variable_bits & mask.forced_bits == 0
        assert mask.irrelevant_bits & mask.forced_bits == 0

    @given(mask_patterns)
    def test_pattern_roundtrip(self, pattern):
        assert Mask.parse(pattern).pattern() == pattern

    @given(mask_patterns, st.integers(min_value=0, max_value=2**32 - 1))
    def test_apply_write_idempotent(self, pattern, raw):
        mask = Mask.parse(pattern)
        once = mask.apply_write(raw)
        assert mask.apply_write(once) == once

    @given(mask_patterns, st.integers(min_value=0, max_value=2**32 - 1))
    def test_apply_write_respects_classes(self, pattern, raw):
        mask = Mask.parse(pattern)
        written = mask.apply_write(raw)
        assert written & mask.irrelevant_bits == 0
        assert written & mask.forced_bits == mask.forced_value
        assert written & mask.variable_bits == raw & mask.variable_bits

    @given(mask_patterns)
    def test_disjointness_is_symmetric(self, pattern):
        first = Mask.parse(pattern)
        second = Mask.parse(pattern[::-1])
        assert first.disjoint_with(second) == second.disjoint_with(first)

    @given(mask_patterns, mask_patterns)
    def test_write_discrimination_symmetric(self, a, b):
        first, second = Mask.parse(a), Mask.parse(b)
        assert first.write_discriminated_from(second) == \
            second.write_discriminated_from(first)


class TestBitHelpers:
    @given(bit_fields(), st.integers(min_value=0, max_value=2**32 - 1))
    def test_extract_insert_roundtrip(self, field, target):
        msb, lsb = field
        extracted = extract_bits(target, msb, lsb)
        assert insert_bits(target, msb, lsb, extracted) == target

    @given(bit_fields(), st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_insert_then_extract(self, field, target, value):
        msb, lsb = field
        width_mask = (1 << (msb - lsb + 1)) - 1
        inserted = insert_bits(target, msb, lsb, value)
        assert extract_bits(inserted, msb, lsb) == value & width_mask

    @given(bit_fields(), st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_insert_preserves_outside_bits(self, field, target, value):
        msb, lsb = field
        field_bits = ((1 << (msb - lsb + 1)) - 1) << lsb
        inserted = insert_bits(target, msb, lsb, value)
        assert inserted & ~field_bits == target & ~field_bits


# ---------------------------------------------------------------------------
# Type round-trips
# ---------------------------------------------------------------------------


class TestTypeProperties:
    @given(st.integers(min_value=1, max_value=32), st.booleans(),
           st.integers())
    def test_int_encode_decode_roundtrip(self, width, signed, value):
        int_type = IntType(width, signed)
        if int_type.contains(value):
            assert int_type.decode(int_type.encode(value)) == value

    @given(st.integers(min_value=1, max_value=32),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_unsigned_decode_encode_roundtrip(self, width, raw):
        int_type = IntType(width)
        raw &= (1 << width) - 1
        assert int_type.encode(int_type.decode(raw)) == raw

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=255))
    def test_signed_decode_in_range(self, width, raw):
        int_type = IntType(width, signed=True)
        decoded = int_type.decode(raw)
        assert int_type.minimum <= decoded <= int_type.maximum

    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                    max_size=16, unique=True))
    def test_enum_roundtrip(self, values):
        items = tuple(EnumItem(f"SYM{v}", format(v, "04b"),
                               EnumDirection.BOTH) for v in values)
        enum_type = EnumType(items)
        for value in values:
            assert enum_type.encode(f"SYM{value}") == value
            assert enum_type.decode(value) == f"SYM{value}"


# ---------------------------------------------------------------------------
# Generated specifications: stub write-read consistency
# ---------------------------------------------------------------------------


class Ram:
    def __init__(self):
        self.cells = [0] * 4

    def io_read(self, offset, width):
        return self.cells[offset]

    def io_write(self, offset, value, width):
        self.cells[offset] = value


@st.composite
def field_layouts(draw):
    """A random partition of one 8-bit register into 1..4 fields."""
    cuts = sorted(draw(st.sets(st.integers(min_value=1, max_value=7),
                               min_size=0, max_size=3)))
    boundaries = [0] + cuts + [8]
    return [(boundaries[i + 1] - 1, boundaries[i])
            for i in range(len(boundaries) - 1)]


def spec_for_layout(layout):
    lines = ["device d (base : bit[8] port @ {0}) {",
             "    register r = base @ 0 : bit[8];"]
    for index, (msb, lsb) in enumerate(layout):
        width = msb - lsb + 1
        lines.append(f"    variable f{index} = r[{msb}..{lsb}] "
                     f": int({width});")
    lines.append("}")
    return compile_spec("\n".join(lines))


class TestStubConsistency:
    @settings(max_examples=40, deadline=None)
    @given(field_layouts(), st.data())
    def test_write_then_read_every_field(self, layout, data):
        spec = spec_for_layout(layout)
        bus = Bus()
        ram = Ram()
        bus.map_device(0x10, 4, ram)
        device = spec.bind(bus, {"base": 0x10})
        written = {}
        for index, (msb, lsb) in enumerate(layout):
            width = msb - lsb + 1
            value = data.draw(st.integers(min_value=0,
                                          max_value=(1 << width) - 1),
                              label=f"f{index}")
            device.set(f"f{index}", value)
            written[index] = value
        for index, value in written.items():
            assert device.get(f"f{index}") == value

    @settings(max_examples=40, deadline=None)
    @given(field_layouts(), st.data())
    def test_neighbour_fields_undisturbed(self, layout, data):
        """Writing one field must not change any other field."""
        spec = spec_for_layout(layout)
        bus = Bus()
        ram = Ram()
        bus.map_device(0x10, 4, ram)
        device = spec.bind(bus, {"base": 0x10})
        for index, (msb, lsb) in enumerate(layout):
            device.set(f"f{index}", (1 << (msb - lsb + 1)) - 1)
        target = data.draw(st.integers(min_value=0,
                                       max_value=len(layout) - 1))
        msb, lsb = layout[target]
        device.set(f"f{target}", 0)
        for index, (msb, lsb) in enumerate(layout):
            expected = 0 if index == target else (1 << (msb - lsb + 1)) - 1
            assert device.get(f"f{index}") == expected

    @settings(max_examples=25, deadline=None)
    @given(field_layouts(), st.data())
    def test_generated_python_agrees_with_runtime(self, layout, data):
        spec = spec_for_layout(layout)
        namespace: dict = {}
        exec(compile(spec.emit_python(), "gen.py", "exec"), namespace)
        (cls,) = [v for k, v in namespace.items() if k.endswith("Stubs")]

        bus_a, bus_b = Bus(tracing=True), Bus(tracing=True)
        bus_a.map_device(0x10, 4, Ram())
        bus_b.map_device(0x10, 4, Ram())
        generated = cls(bus_a, 0x10)
        interpreted = spec.bind(bus_b, {"base": 0x10}, debug=False)
        for index, (msb, lsb) in enumerate(layout):
            width = msb - lsb + 1
            value = data.draw(st.integers(min_value=0,
                                          max_value=(1 << width) - 1))
            getattr(generated, f"set_f{index}")(value)
            interpreted.set(f"f{index}", value)
            assert getattr(generated, f"get_f{index}")() == \
                interpreted.get(f"f{index}")
        assert bus_a.trace == bus_b.trace


# ---------------------------------------------------------------------------
# Lexer totality
# ---------------------------------------------------------------------------


class TestLexerProperties:
    @given(st.text(alphabet=st.characters(min_codepoint=32,
                                          max_codepoint=126),
                   max_size=80))
    def test_lexer_never_crashes_unexpectedly(self, source):
        """Any printable input either tokenizes or raises DevilLexError."""
        from repro.devil.errors import DevilLexError
        from repro.devil.lexer import tokenize
        try:
            tokens = tokenize(source)
        except DevilLexError:
            return
        assert tokens[-1].kind.name == "EOF"

    @given(st.text(alphabet="01.*-", min_size=1, max_size=16))
    def test_bit_patterns_always_tokenize(self, pattern):
        from repro.devil.lexer import TokenKind, tokenize
        (token,) = tokenize(f"'{pattern}'")[:-1]
        assert token.kind is TokenKind.BITPATTERN
        assert token.text == pattern


# ---------------------------------------------------------------------------
# Mutation rules invariants
# ---------------------------------------------------------------------------


class TestMutationProperties:
    @given(st.text(alphabet="abcdefgh_", min_size=1, max_size=10))
    def test_mutants_differ_from_original(self, token):
        from repro.mutation.rules import MutationSite, mutants_for_site
        site = MutationSite("ident", token, 0, 1)
        for mutant in mutants_for_site(site, 20):
            assert mutant.mutated_token != token

    @given(st.text(alphabet="0123456789", min_size=1, max_size=5))
    def test_mutants_unique(self, token):
        from repro.mutation.rules import MutationSite, mutants_for_site
        site = MutationSite("number", token, 0, 1)
        tokens = [m.mutated_token for m in mutants_for_site(site)]
        assert len(tokens) == len(set(tokens))

    @given(st.text(alphabet="abc_", min_size=1, max_size=8),
           st.integers(min_value=1, max_value=30))
    def test_sampling_bounded(self, token, cap):
        from repro.mutation.rules import MutationSite, mutants_for_site
        site = MutationSite("ident", token, 0, 1)
        assert len(mutants_for_site(site, cap)) <= cap
