"""Cross-process parity harness: the process backend is indistinguishable.

The multiprocessing fleet's correctness claim mirrors PR 4's thread
claim, one substrate deeper: for the same submission sequence, the
process backend must produce — not approximately, *byte for byte* —

* the same device end-state (pickled per-mapping snapshots via the
  :meth:`repro.bus.Bus.state_snapshot` seam),
* the same exact per-device accounting shards,
* the same span signatures (strategy- and timing-independent span
  identity), and
* the same per-device port-operation traces

as the serial single-worker reference and the thread backend, for
every shipped specification.  Placement is deterministic at submit
time in all three, which is what makes request-for-request comparison
a valid test at all.
"""

from __future__ import annotations

import pickle

import pytest

from repro import obs
from repro.bus import Bus, iter_operations
from repro.engine import (
    SLOT_STRIDE,
    Fleet,
    ProcessFleet,
    WorkerError,
    decode_request,
    encode_request,
    fleet_layout,
    ide_sector_checksum,
    ide_sector_read,
    mixed_schedule,
)
from repro.obs.workloads import WORKLOADS, build_machine
from repro.specs import SPEC_NAMES

pytestmark = pytest.mark.concurrency


def _run_backend(backend: str, devices, schedule, **fleet_kwargs):
    """One observed fleet run; returns the full parity evidence."""
    collector = obs.Collector()
    with obs.observe(collector=collector):
        if backend == "process":
            fleet = ProcessFleet(devices, workers=2, tracing=True,
                                 collector=collector, **fleet_kwargs)
        else:
            workers = 1 if backend == "serial" else 4
            fleet = Fleet(devices, workers=workers, tracing=True,
                          **fleet_kwargs)
            fleet.bus.collector = collector
        with fleet:
            fleet.run(schedule)
            evidence = {
                "states": fleet.device_states(),
                "by_device": fleet.accounting_by_device(),
                "accounting": fleet.accounting
                if backend == "process"
                else fleet.accounting.snapshot(),
                "completed": fleet.completed_by_device(),
                "trace": list(fleet.trace)
                if backend == "process" else list(fleet.bus.trace),
                "signatures": sorted(collector.signatures(), key=repr),
            }
        if backend != "process":
            fleet.bus.collector = None
    return evidence


def _device_trace(trace, slot):
    """The trace entries of the device occupying ``slot``."""
    return [entry for entry in trace
            if slot <= entry.port < slot + SLOT_STRIDE]


# ---------------------------------------------------------------------------
# The parity suite: every shipped spec, serial vs thread vs process
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("spec", SPEC_NAMES)
def test_backend_parity_per_spec(spec):
    """Serial, thread-fleet and process-fleet runs of the shipped
    workload are byte-identical in end-state, accounting, spans and
    per-device traces."""
    devices = [spec, spec]
    schedule = [(spec, WORKLOADS[spec])] * 6
    serial = _run_backend("serial", devices, schedule)
    threaded = _run_backend("thread", devices, schedule)
    process = _run_backend("process", devices, schedule)

    for backend, evidence in (("thread", threaded),
                              ("process", process)):
        assert evidence["completed"] == serial["completed"], backend
        assert evidence["by_device"] == serial["by_device"], backend
        assert evidence["accounting"] == serial["accounting"], backend
        # Byte-equal end-state, mapping by mapping.
        assert sorted(evidence["states"]) == sorted(serial["states"])
        for name, blob in serial["states"].items():
            assert evidence["states"][name] == blob, \
                f"{backend}: end-state of {name!r} diverged for {spec}"
        assert evidence["signatures"] == serial["signatures"], \
            f"{backend}: span signatures diverged for {spec}"
        # Per-device port-op streams, in device program order.
        for _, label, slot in fleet_layout(devices):
            assert _device_trace(evidence["trace"], slot) == \
                _device_trace(serial["trace"], slot), \
                f"{backend}: trace of {label} diverged for {spec}"


def test_backend_parity_mixed_fleet_with_txn_and_cpu_requests():
    """A mixed fleet under a request mix spanning plain, transactional
    and CPU-bound requests stays exact across all three backends."""
    from repro.engine import ide_sector_read_txn

    devices = ["ide", "ide", "permedia2", "ne2000"]
    schedule = []
    for _ in range(4):
        schedule += [("ide", ide_sector_read),
                     ("ide", ide_sector_read_txn),
                     ("ide", ide_sector_checksum),
                     ("permedia2", WORKLOADS["permedia2"]),
                     ("ne2000", WORKLOADS["ne2000"])]
    serial = _run_backend("serial", devices, schedule,
                          shadow_cache=True)
    threaded = _run_backend("thread", devices, schedule,
                            shadow_cache=True)
    process = _run_backend("process", devices, schedule,
                           shadow_cache=True)
    assert threaded["states"] == serial["states"]
    assert process["states"] == serial["states"]
    assert threaded["by_device"] == serial["by_device"]
    assert process["by_device"] == serial["by_device"]
    assert process["signatures"] == serial["signatures"]
    # Runtime-level effects crossed the process boundary exactly: the
    # transactional writes coalesced in the workers, and the merged
    # accounting agrees field for field (the mix's registers are all
    # volatile, so elisions are exactly zero on every backend).
    assert process["accounting"] == serial["accounting"]
    assert process["accounting"].coalesced_writes > 0


@pytest.mark.parametrize("strategy", ("interpret", "generated"))
def test_process_backend_strategy_parity(strategy):
    """The process backend is exact under the non-default execution
    strategies too (the specializer is covered by the suite above)."""
    devices = ["ide", "ide"]
    schedule = [("ide", ide_sector_read)] * 6
    serial = _run_backend("serial", devices, schedule,
                          strategy=strategy)
    process = _run_backend("process", devices, schedule,
                           strategy=strategy)
    assert process["states"] == serial["states"]
    assert process["by_device"] == serial["by_device"]
    assert process["signatures"] == serial["signatures"]


def test_process_backend_block_groups_stay_contiguous():
    """Block transfers keep their per-word trace entries adjacent in
    each worker's exported ring (``iter_operations`` must regroup)."""
    devices = ["ide", "ide", "ide"]
    schedule = [("ide", ide_sector_read)] * 9
    process = _run_backend("process", devices, schedule)
    operations = list(iter_operations(process["trace"]))
    blocks = [op for op in operations if op[0].op in ("rb", "wb")]
    assert blocks, "sector reads must produce block operations"
    for group in blocks:
        assert len(group) == group[0].count
        assert len({entry.port for entry in group}) == 1


# ---------------------------------------------------------------------------
# The bus snapshot/restore seam
# ---------------------------------------------------------------------------


def test_bus_state_snapshot_detects_single_bit_difference():
    bus_a, aux_a, _ = build_machine("ide", tracing=False)
    bus_b, aux_b, _ = build_machine("ide", tracing=False)
    assert bus_a.state_snapshot() == bus_b.state_snapshot()
    aux_b["disk"].store[0] ^= 0x01
    assert bus_a.state_snapshot() != bus_b.state_snapshot()


def test_bus_state_blob_roundtrip_preserves_aliasing():
    """restore_state swaps device state and keeps shared models shared
    (the NE2000 model sits behind three mappings)."""
    bus, aux, bases = build_machine("ne2000", tracing=False)
    aux["nic"].ram[0:4] = b"\x11\x22\x33\x44"
    blob = bus.state_blob()
    snapshot = bus.state_snapshot()

    fresh, _, _ = build_machine("ne2000", tracing=False)
    assert fresh.state_snapshot() != snapshot
    fresh.restore_state(blob)
    assert fresh.state_snapshot() == snapshot
    # The data port still aliases the restored model: a write through
    # one mapping is visible through the other.
    restored_nic = fresh._mappings[0].device
    data_port = fresh._mappings[1].device
    assert data_port.nic is restored_nic


def test_bus_restore_state_rejects_mismatched_topology():
    bus, _, _ = build_machine("ide", tracing=False)
    other, _, _ = build_machine("ne2000", tracing=False)
    from repro.bus import BusError
    with pytest.raises(BusError):
        bus.restore_state(other.state_blob())


def test_plain_bus_exposes_the_snapshot_seam():
    """The seam lives on the base Bus, not just the thread-safe one."""
    bus = Bus()
    assert bus.state_snapshot() == {}
    assert pickle.loads(bus.state_blob()) == []


# ---------------------------------------------------------------------------
# The request codec
# ---------------------------------------------------------------------------


def test_request_codec_roundtrips_shipped_requests():
    for request in (ide_sector_read, ide_sector_checksum,
                    WORKLOADS["busmouse"]):
        token = encode_request(request)
        assert decode_request(token) is request


def test_request_codec_rejects_unshippable_callables():
    with pytest.raises(ValueError):
        encode_request(lambda stubs, aux: None)

    def nested(stubs, aux):
        return None

    with pytest.raises(ValueError):
        encode_request(nested)
    with pytest.raises(ValueError):
        decode_request("repro.engine.requests:does_not_exist")
    with pytest.raises(ValueError):
        decode_request("no-colon-here")


def test_process_fleet_rejects_unshippable_requests_at_submit():
    with ProcessFleet(["ide"], workers=1) as fleet:
        with pytest.raises(ValueError):
            fleet.submit("ide", lambda stubs, aux: None)
        fleet.submit("ide", ide_sector_read)
        fleet.drain()
        assert fleet.completed() == 1


# ---------------------------------------------------------------------------
# Process-backend semantics
# ---------------------------------------------------------------------------


def test_process_fleet_requires_deterministic_policy():
    with pytest.raises(ValueError, match="deterministic"):
        ProcessFleet(["ide", "ide"], policy="least-loaded")
    with pytest.raises(ValueError):
        ProcessFleet(["ide"], policy="psychic")


def test_process_fleet_propagates_request_errors():
    with pytest.raises(WorkerError) as info:
        with ProcessFleet(["ide"], workers=1) as fleet:
            fleet.submit("ide", _exploding_request)
            fleet.drain()
    assert "request exploded in the worker" in str(info.value)


def test_process_fleet_weighted_placement_matches_thread_backend():
    weights = {"ide0": 3, "ide1": 1}
    schedule = [("ide", ide_sector_read)] * 8
    with Fleet(["ide", "ide"], workers=2,
               policy="weighted-round-robin", weights=weights) as fleet:
        fleet.run(schedule)
        thread_counts = fleet.completed_by_device()
    with ProcessFleet(["ide", "ide"], workers=2,
                      policy="weighted-round-robin",
                      weights=weights) as fleet:
        fleet.run(schedule)
        process_counts = fleet.completed_by_device()
    assert thread_counts == process_counts == {"ide0": 6, "ide1": 2}


def test_process_fleet_accounting_exact_across_worker_counts():
    """The mixed schedule lands identical merged totals at 1, 2 and 3
    processes — sharding must not change what reaches the wire."""
    schedule = mixed_schedule(4)
    devices = ["ide", "permedia2", "ne2000"]
    reference = None
    for workers in (1, 2, 3):
        with ProcessFleet(devices, workers=workers) as fleet:
            fleet.run(schedule)
            accounting = fleet.accounting
            states = fleet.device_states()
        if reference is None:
            reference = (accounting, states)
        else:
            assert accounting == reference[0], f"{workers} workers"
            assert states == reference[1], f"{workers} workers"


def _exploding_request(stubs, aux):
    raise RuntimeError("request exploded in the worker")
