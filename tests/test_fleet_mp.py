"""Cross-process parity harness: the process backend is indistinguishable.

The multiprocessing fleet's correctness claim mirrors PR 4's thread
claim, one substrate deeper: for the same submission sequence, the
process backend must produce — not approximately, *byte for byte* —

* the same device end-state (pickled per-mapping snapshots via the
  :meth:`repro.bus.Bus.state_snapshot` seam),
* the same exact per-device accounting shards,
* the same span signatures (strategy- and timing-independent span
  identity), and
* the same per-device port-operation traces

as the serial single-worker reference and the thread backend, for
every shipped specification.  Placement is deterministic at submit
time in all three, which is what makes request-for-request comparison
a valid test at all.
"""

from __future__ import annotations

import functools
import pickle

import pytest

from repro import obs
from repro.bus import Bus, iter_operations
from repro.engine import (
    SLOT_STRIDE,
    Fleet,
    ProcessFleet,
    WorkerError,
    decode_request,
    encode_request,
    fleet_layout,
    ide_sector_checksum,
    ide_sector_read,
    mixed_schedule,
)
from repro.devil.native import native_available
from repro.obs.workloads import WORKLOADS, build_machine
from repro.specs import SPEC_NAMES

pytestmark = pytest.mark.concurrency

needs_cc = pytest.mark.skipif(not native_available(),
                              reason="strategy='native' needs a C "
                                     "compiler")


def _run_backend(backend: str, devices, schedule, **fleet_kwargs):
    """One observed fleet run; returns the full parity evidence."""
    collector = obs.Collector()
    with obs.observe(collector=collector):
        if backend == "process":
            fleet = ProcessFleet(devices, workers=2, tracing=True,
                                 collector=collector, **fleet_kwargs)
        else:
            workers = 1 if backend == "serial" else 4
            fleet = Fleet(devices, workers=workers, tracing=True,
                          **fleet_kwargs)
            fleet.bus.collector = collector
        with fleet:
            fleet.run(schedule)
            evidence = {
                "states": fleet.device_states(),
                "by_device": fleet.accounting_by_device(),
                "accounting": fleet.accounting
                if backend == "process"
                else fleet.accounting.snapshot(),
                "completed": fleet.completed_by_device(),
                "trace": list(fleet.trace)
                if backend == "process" else list(fleet.bus.trace),
                "signatures": sorted(collector.signatures(), key=repr),
            }
        if backend != "process":
            fleet.bus.collector = None
    return evidence


def _device_trace(trace, slot):
    """The trace entries of the device occupying ``slot``."""
    return [entry for entry in trace
            if slot <= entry.port < slot + SLOT_STRIDE]


# ---------------------------------------------------------------------------
# The parity suite: every shipped spec, serial vs thread vs process
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def _spec_references(spec):
    """Serial and thread evidence for one spec's parity schedule.

    Cached: the references are identical for every process-backend
    batch size, so each spec pays for them once."""
    devices = [spec, spec]
    schedule = [(spec, WORKLOADS[spec])] * 6
    return (_run_backend("serial", devices, schedule),
            _run_backend("thread", devices, schedule))


@pytest.mark.parametrize("batch_size", (1, 8, "auto"))
@pytest.mark.parametrize("spec", SPEC_NAMES)
def test_backend_parity_per_spec(spec, batch_size):
    """Serial, thread-fleet and process-fleet runs of the shipped
    workload are byte-identical in end-state, accounting, spans and
    per-device traces — at every batch size (batching and the result
    rings are transport, never semantics)."""
    devices = [spec, spec]
    schedule = [(spec, WORKLOADS[spec])] * 6
    serial, threaded = _spec_references(spec)
    process = _run_backend("process", devices, schedule,
                           batch_size=batch_size)

    for backend, evidence in (("thread", threaded),
                              ("process", process)):
        assert evidence["completed"] == serial["completed"], backend
        assert evidence["by_device"] == serial["by_device"], backend
        assert evidence["accounting"] == serial["accounting"], backend
        # Byte-equal end-state, mapping by mapping.
        assert sorted(evidence["states"]) == sorted(serial["states"])
        for name, blob in serial["states"].items():
            assert evidence["states"][name] == blob, \
                f"{backend}: end-state of {name!r} diverged for {spec}"
        assert evidence["signatures"] == serial["signatures"], \
            f"{backend}: span signatures diverged for {spec}"
        # Per-device port-op streams, in device program order.
        for _, label, slot in fleet_layout(devices):
            assert _device_trace(evidence["trace"], slot) == \
                _device_trace(serial["trace"], slot), \
                f"{backend}: trace of {label} diverged for {spec}"


def test_backend_parity_mixed_fleet_with_txn_and_cpu_requests():
    """A mixed fleet under a request mix spanning plain, transactional
    and CPU-bound requests stays exact across all three backends."""
    from repro.engine import ide_sector_read_txn

    devices = ["ide", "ide", "permedia2", "ne2000"]
    schedule = []
    for _ in range(4):
        schedule += [("ide", ide_sector_read),
                     ("ide", ide_sector_read_txn),
                     ("ide", ide_sector_checksum),
                     ("permedia2", WORKLOADS["permedia2"]),
                     ("ne2000", WORKLOADS["ne2000"])]
    serial = _run_backend("serial", devices, schedule,
                          shadow_cache=True)
    threaded = _run_backend("thread", devices, schedule,
                            shadow_cache=True)
    process = _run_backend("process", devices, schedule,
                           shadow_cache=True)
    assert threaded["states"] == serial["states"]
    assert process["states"] == serial["states"]
    assert threaded["by_device"] == serial["by_device"]
    assert process["by_device"] == serial["by_device"]
    assert process["signatures"] == serial["signatures"]
    # Runtime-level effects crossed the process boundary exactly: the
    # transactional writes coalesced in the workers, and the merged
    # accounting agrees field for field (the mix's registers are all
    # volatile, so elisions are exactly zero on every backend).
    assert process["accounting"] == serial["accounting"]
    assert process["accounting"].coalesced_writes > 0


@pytest.mark.parametrize("backend", ("thread", "process"))
def test_backend_parity_with_telemetry_enabled(backend):
    """The live telemetry plane (heartbeats, latency histograms,
    flight recorder) is pure observation: a fleet running with
    ``telemetry=True`` stays byte-equal to the untelemetered serial
    reference — end-state, accounting, spans and per-device traces."""
    spec = "ide"
    devices = [spec, spec]
    schedule = [(spec, WORKLOADS[spec])] * 6
    serial, _ = _spec_references(spec)
    evidence = _run_backend(backend, devices, schedule, telemetry=True)
    assert evidence["completed"] == serial["completed"]
    assert evidence["by_device"] == serial["by_device"]
    assert evidence["accounting"] == serial["accounting"]
    for name, blob in serial["states"].items():
        assert evidence["states"][name] == blob, \
            f"telemetry perturbed the end-state of {name!r}"
    assert evidence["signatures"] == serial["signatures"]
    for _, label, slot in fleet_layout(devices):
        assert _device_trace(evidence["trace"], slot) == \
            _device_trace(serial["trace"], slot), \
            f"telemetry perturbed the trace of {label}"


def test_process_fleet_telemetry_merges_worker_latency():
    """Worker-observed request latency crosses the process boundary
    as delta snapshots at sync points and folds into the parent's
    registry; live heartbeats carry each worker's own percentiles."""
    from repro.engine import MIXED_REQUESTS

    with ProcessFleet(["ide", "permedia2"], workers=2,
                      telemetry=True) as fleet:
        for _ in range(4):
            fleet.submit("ide", MIXED_REQUESTS["ide"])
            fleet.submit("permedia2", MIXED_REQUESTS["permedia2"])
        fleet.drain()
        telemetry = fleet.telemetry
        merged = {tuple(sorted(h.labels.items())): h.count
                  for h in telemetry.metrics.find("fleet.request_us")}
        assert merged[(("backend", "process"), ("spec", "ide"))] == 4
        assert merged[(("backend", "process"),
                       ("spec", "permedia2"))] == 4
        beats = telemetry.heartbeats()
        assert set(beats) == {"pfleet-w0", "pfleet-w1"}
        for beat in beats.values():
            assert beat.completed == 4
            assert beat.inflight is None
            assert beat.latency_p95_us > 0.0


@pytest.mark.parametrize("strategy", ("interpret", "generated"))
def test_process_backend_strategy_parity(strategy):
    """The process backend is exact under the non-default execution
    strategies too (the specializer is covered by the suite above)."""
    devices = ["ide", "ide"]
    schedule = [("ide", ide_sector_read)] * 6
    serial = _run_backend("serial", devices, schedule,
                          strategy=strategy)
    process = _run_backend("process", devices, schedule,
                           strategy=strategy)
    assert process["states"] == serial["states"]
    assert process["by_device"] == serial["by_device"]
    assert process["signatures"] == serial["signatures"]


def test_process_backend_block_groups_stay_contiguous():
    """Block transfers keep their per-word trace entries adjacent in
    each worker's exported ring (``iter_operations`` must regroup)."""
    devices = ["ide", "ide", "ide"]
    schedule = [("ide", ide_sector_read)] * 9
    process = _run_backend("process", devices, schedule)
    operations = list(iter_operations(process["trace"]))
    blocks = [op for op in operations if op[0].op in ("rb", "wb")]
    assert blocks, "sector reads must produce block operations"
    for group in blocks:
        assert len(group) == group[0].count
        assert len({entry.port for entry in group}) == 1


# ---------------------------------------------------------------------------
# The native strategy: the compiled core is a fourth exact substrate
# ---------------------------------------------------------------------------


def _run_untraced(backend, devices, schedule, **fleet_kwargs):
    """A fleet run with no tracer and no collector attached.

    This is the configuration where native thread workers enter direct
    mode — whole batches dispatch through the C port table with
    C-side accounting — so exactness here covers the fast path the
    traced harness above deliberately disables.
    """
    if backend == "process":
        fleet = ProcessFleet(devices, workers=2, tracing=False,
                             **fleet_kwargs)
    else:
        workers = 1 if backend == "serial" else 4
        fleet = Fleet(devices, workers=workers, tracing=False,
                      **fleet_kwargs)
    with fleet:
        fleet.run(schedule)
        return {
            "states": fleet.device_states(),
            "by_device": fleet.accounting_by_device(),
            "accounting": fleet.accounting
            if backend == "process" else fleet.accounting.snapshot(),
            "completed": fleet.completed_by_device(),
        }


@needs_cc
@pytest.mark.parametrize("backend", ("serial", "thread", "process"))
@pytest.mark.parametrize("spec", SPEC_NAMES)
def test_native_backend_parity_per_spec(spec, backend):
    """Every backend running ``strategy='native'`` is byte-identical
    to the serial specializer reference on every shipped spec —
    end-state, per-device accounting shards, span signatures and
    per-device port-op traces.  Tracing keeps the native core in
    callback mode here; direct mode is covered below."""
    devices = [spec, spec]
    schedule = [(spec, WORKLOADS[spec])] * 6
    serial, _ = _spec_references(spec)
    evidence = _run_backend(backend, devices, schedule,
                            strategy="native")
    assert evidence["completed"] == serial["completed"]
    assert evidence["by_device"] == serial["by_device"]
    assert evidence["accounting"] == serial["accounting"]
    for name, blob in serial["states"].items():
        assert evidence["states"][name] == blob, \
            f"native/{backend}: end-state of {name!r} diverged"
    assert evidence["signatures"] == serial["signatures"], \
        f"native/{backend}: span signatures diverged for {spec}"
    for _, label, slot in fleet_layout(devices):
        assert _device_trace(evidence["trace"], slot) == \
            _device_trace(serial["trace"], slot), \
            f"native/{backend}: trace of {label} diverged for {spec}"


@needs_cc
@pytest.mark.parametrize("spec", SPEC_NAMES)
def test_native_direct_mode_parity_untraced(spec):
    """With no tracer or collector, native fleet workers run whole
    batches in direct mode (C dispatch, C accounting, C device models
    where shipped) and still land byte-equal end-state, exact merged
    accounting and exact per-device shards against the untraced serial
    specializer."""
    devices = [spec, spec]
    schedule = [(spec, WORKLOADS[spec])] * 6
    reference = _run_untraced("serial", devices, schedule)
    for backend in ("thread", "process"):
        native = _run_untraced(backend, devices, schedule,
                               strategy="native")
        assert native == reference, f"native/{backend} for {spec}"


@needs_cc
def test_native_churn_request_parity_across_strategies():
    """The dispatch-bound benchmark request is exact: the native
    ``repeat()`` fast path produces the same traffic, traces and
    accounting as the specializer's Python loop."""
    from repro.engine import ide_taskfile_churn

    devices = ["ide", "ide"]
    schedule = [("ide", functools.partial(ide_taskfile_churn,
                                          n=512))] * 4
    reference = _run_backend("serial", devices, schedule)
    for backend in ("thread", "process"):
        native = _run_backend(backend, devices, schedule,
                              strategy="native")
        assert native["states"] == reference["states"]
        assert native["by_device"] == reference["by_device"]
        assert native["accounting"] == reference["accounting"]
        for _, label, slot in fleet_layout(devices):
            assert _device_trace(native["trace"], slot) == \
                _device_trace(reference["trace"], slot), label


@needs_cc
def test_native_process_fleet_propagates_mid_batch_errors():
    """A device fault in the middle of a native batch surfaces as a
    WorkerError carrying the device's message, and the worker keeps
    serving later batches."""
    from repro.engine import ide_data_probe

    with ProcessFleet(["ide"], workers=1, batch_size=4,
                      strategy="native") as fleet:
        fleet.submit("ide", ide_sector_read)
        fleet.submit("ide", ide_data_probe)
        fleet.submit("ide", ide_sector_read)
        with pytest.raises(WorkerError) as info:
            fleet.drain()
        assert "DRQ" in str(info.value)
        # The failure was contained to the one request: the worker
        # process survived and the fleet still executes new batches.
        fleet.submit("ide", ide_sector_read)
        fleet.drain()
        assert fleet.completed() == 3


# ---------------------------------------------------------------------------
# The bus snapshot/restore seam
# ---------------------------------------------------------------------------


def test_bus_state_snapshot_detects_single_bit_difference():
    bus_a, aux_a, _ = build_machine("ide", tracing=False)
    bus_b, aux_b, _ = build_machine("ide", tracing=False)
    assert bus_a.state_snapshot() == bus_b.state_snapshot()
    aux_b["disk"].store[0] ^= 0x01
    assert bus_a.state_snapshot() != bus_b.state_snapshot()


def test_bus_state_blob_roundtrip_preserves_aliasing():
    """restore_state swaps device state and keeps shared models shared
    (the NE2000 model sits behind three mappings)."""
    bus, aux, bases = build_machine("ne2000", tracing=False)
    aux["nic"].ram[0:4] = b"\x11\x22\x33\x44"
    blob = bus.state_blob()
    snapshot = bus.state_snapshot()

    fresh, _, _ = build_machine("ne2000", tracing=False)
    assert fresh.state_snapshot() != snapshot
    fresh.restore_state(blob)
    assert fresh.state_snapshot() == snapshot
    # The data port still aliases the restored model: a write through
    # one mapping is visible through the other.
    restored_nic = fresh._mappings[0].device
    data_port = fresh._mappings[1].device
    assert data_port.nic is restored_nic


def test_bus_restore_state_rejects_mismatched_topology():
    bus, _, _ = build_machine("ide", tracing=False)
    other, _, _ = build_machine("ne2000", tracing=False)
    from repro.bus import BusError
    with pytest.raises(BusError):
        bus.restore_state(other.state_blob())


def test_plain_bus_exposes_the_snapshot_seam():
    """The seam lives on the base Bus, not just the thread-safe one."""
    bus = Bus()
    assert bus.state_snapshot() == {}
    assert pickle.loads(bus.state_blob()) == []


# ---------------------------------------------------------------------------
# The request codec
# ---------------------------------------------------------------------------


def test_request_codec_roundtrips_shipped_requests():
    for request in (ide_sector_read, ide_sector_checksum,
                    WORKLOADS["busmouse"]):
        token = encode_request(request)
        assert decode_request(token) is request


def test_request_codec_rejects_unshippable_callables():
    with pytest.raises(ValueError):
        encode_request(lambda stubs, aux: None)

    def nested(stubs, aux):
        return None

    with pytest.raises(ValueError):
        encode_request(nested)
    with pytest.raises(ValueError):
        decode_request("repro.engine.requests:does_not_exist")
    with pytest.raises(ValueError):
        decode_request("no-colon-here")


def test_process_fleet_rejects_unshippable_requests_at_submit():
    with ProcessFleet(["ide"], workers=1) as fleet:
        with pytest.raises(ValueError):
            fleet.submit("ide", lambda stubs, aux: None)
        fleet.submit("ide", ide_sector_read)
        fleet.drain()
        assert fleet.completed() == 1


def test_request_codec_roundtrips_partials():
    """A partial over a module-level callable ships: the base travels
    by reference, the bound arguments by value."""
    import functools as ft

    from repro.engine import ide_sector_read_lba, request_label

    request = ft.partial(ide_sector_read_lba, lba=9)
    token = encode_request(request)
    assert isinstance(token, tuple) and token[0] == "partial"
    resolved = decode_request(token)
    assert resolved.func is ide_sector_read_lba
    assert resolved.keywords == {"lba": 9}
    # Nested partials flatten at construction, so they ship too.
    nested = ft.partial(ft.partial(ide_sector_read_lba, lba=3))
    assert decode_request(encode_request(nested)).keywords == {"lba": 3}
    assert "ide_sector_read_lba" in request_label(request)
    assert "lba=9" in request_label(request)


def test_request_codec_rejects_bad_partials():
    import functools as ft

    from repro.engine import ide_sector_read_lba

    with pytest.raises(ValueError):  # lambda under the partial
        encode_request(ft.partial(lambda stubs, aux: None))
    with pytest.raises(ValueError):  # unpicklable bound argument
        encode_request(ft.partial(ide_sector_read_lba,
                                  lba=lambda: 2))
    with pytest.raises(ValueError):  # malformed tuple tokens
        decode_request(("partial", "only-two"))
    with pytest.raises(ValueError):
        decode_request(("partial", "repro.engine.requests:"
                        "ide_sector_read_lba", b"not a pickle"))


def test_process_fleet_executes_partial_requests_exactly():
    """Partial requests land the same end-state on every backend (the
    bound lba argument must actually reach the worker)."""
    import functools as ft

    from repro.engine import ide_sector_read_lba

    schedule = [("ide", ft.partial(ide_sector_read_lba, lba=5)),
                ("ide", ide_sector_read),
                ("ide", ft.partial(ide_sector_read_lba, lba=11))] * 2
    serial = _run_backend("serial", ["ide", "ide"], schedule)
    process = _run_backend("process", ["ide", "ide"], schedule,
                           batch_size=8)
    assert process["states"] == serial["states"]
    assert process["by_device"] == serial["by_device"]
    for _, label, slot in fleet_layout(["ide", "ide"]):
        assert _device_trace(process["trace"], slot) == \
            _device_trace(serial["trace"], slot), label
    # The parameterized reads really did touch different sectors than
    # a default-lba-only schedule would.
    default_only = _run_backend("serial", ["ide", "ide"],
                                [("ide", ide_sector_read)] * 6)
    assert process["trace"] != default_only["trace"]


# ---------------------------------------------------------------------------
# Batching and the shared-memory result rings
# ---------------------------------------------------------------------------


def test_submit_batch_matches_per_request_submission():
    """submit_batch places and executes identically to N submits, on
    both backends (placement is per request; only transport groups)."""
    from repro.engine import Fleet, mixed_schedule

    devices = ["ide", "permedia2", "ne2000"]
    schedule = mixed_schedule(4)
    evidence = {}
    for mode in ("loop", "batch"):
        with ProcessFleet(devices, workers=2) as fleet:
            if mode == "batch":
                assert fleet.submit_batch(schedule) == len(schedule)
            else:
                for spec, request in schedule:
                    fleet.submit(spec, request)
            fleet.drain()
            evidence[mode] = (fleet.completed_by_device(),
                              fleet.device_states(),
                              fleet.accounting)
    assert evidence["loop"] == evidence["batch"]
    with Fleet(devices, workers=2) as fleet:
        assert fleet.submit_batch(schedule) == len(schedule)
        fleet.drain()
        assert fleet.completed_by_device() == evidence["loop"][0]


def test_partial_batches_flush_at_sync_points():
    """A drain flushes buffered placements no matter how few: nothing
    below the batch watermark is ever stranded."""
    with ProcessFleet(["ide", "ide"], workers=2,
                      batch_size=64) as fleet:
        fleet.submit("ide", ide_sector_read)
        fleet.drain()
        assert fleet.completed() == 1
        for _ in range(3):
            fleet.submit("ide", ide_sector_read)
        fleet.drain()
        assert fleet.completed() == 4


def test_tiny_ring_spills_to_queue_without_losing_anything():
    """A ring too small for the traced payload degrades to the queue
    transport record for record — exactness must not depend on ring
    capacity (MIN_RING_BYTES is far below a traced sync report)."""
    from repro.engine import MIN_RING_BYTES

    devices = ["ide", "ide"]
    schedule = [("ide", ide_sector_read)] * 8
    spacious = _run_backend("process", devices, schedule,
                            batch_size=4)
    tiny = _run_backend("process", devices, schedule, batch_size=4,
                        ring_bytes=MIN_RING_BYTES)
    assert tiny["states"] == spacious["states"]
    assert tiny["trace"] == spacious["trace"]
    assert tiny["signatures"] == spacious["signatures"]
    assert tiny["accounting"] == spacious["accounting"]


def test_ring_disabled_fallback_matches_ring_transport():
    """ring_bytes=0 rides the reply queue (the pre-ring transport)
    and must be observationally identical."""
    devices = ["ide", "ne2000"]
    schedule = [("ide", ide_sector_read)] * 4 + \
        [("ne2000", WORKLOADS["ne2000"])] * 4
    with_ring = _run_backend("process", devices, schedule)
    without = _run_backend("process", devices, schedule, ring_bytes=0)
    assert without == with_ring


def test_process_fleet_validates_batching_parameters():
    with pytest.raises(ValueError, match="batch_size"):
        ProcessFleet(["ide"], batch_size=0)
    with pytest.raises(ValueError, match="batch_size"):
        ProcessFleet(["ide"], batch_size="huge")
    with pytest.raises(ValueError, match="flush_us"):
        ProcessFleet(["ide"], flush_us=0)
    with pytest.raises(ValueError, match="ring_bytes"):
        ProcessFleet(["ide"], ring_bytes=-1)


def test_shm_ring_put_read_ack_cycle():
    """Unit-level ring contract: framed records round-trip, a full
    ring refuses rather than overwrites, acks reclaim space."""
    from repro.engine import ShmRing
    from repro.engine.shm import create_ring_memory

    producer_view = ShmRing(create_ring_memory(4096))
    try:
        consumer = ShmRing(producer_view.memory)
        records = [("spans", list(range(50))), ("sync_report", 1, {})]
        for record in records:
            assert producer_view.put(record)
        assert consumer.read_to(producer_view.written) == records

        # Fill until refusal; nothing written after a False return.
        big = ("blob", b"x" * 600)
        accepted = 0
        while producer_view.put(big):
            accepted += 1
        assert accepted > 0
        written_before = producer_view.written
        assert not producer_view.put(big)
        assert producer_view.written == written_before

        # Drain + ack makes the space reusable (wrap-around included).
        assert consumer.read_to(producer_view.written) == \
            [big] * accepted
        producer_view.ack(consumer.consumed)
        assert producer_view.put(big)
        assert consumer.read_to(producer_view.written) == [big]
    finally:
        producer_view.close()
        producer_view.unlink()


# ---------------------------------------------------------------------------
# Process-backend semantics
# ---------------------------------------------------------------------------


def test_process_fleet_requires_deterministic_policy():
    with pytest.raises(ValueError, match="deterministic"):
        ProcessFleet(["ide", "ide"], policy="least-loaded")
    with pytest.raises(ValueError):
        ProcessFleet(["ide"], policy="psychic")


def test_process_fleet_propagates_request_errors():
    with pytest.raises(WorkerError) as info:
        with ProcessFleet(["ide"], workers=1) as fleet:
            fleet.submit("ide", _exploding_request)
            fleet.drain()
    assert "request exploded in the worker" in str(info.value)


def test_process_fleet_weighted_placement_matches_thread_backend():
    weights = {"ide0": 3, "ide1": 1}
    schedule = [("ide", ide_sector_read)] * 8
    with Fleet(["ide", "ide"], workers=2,
               policy="weighted-round-robin", weights=weights) as fleet:
        fleet.run(schedule)
        thread_counts = fleet.completed_by_device()
    with ProcessFleet(["ide", "ide"], workers=2,
                      policy="weighted-round-robin",
                      weights=weights) as fleet:
        fleet.run(schedule)
        process_counts = fleet.completed_by_device()
    assert thread_counts == process_counts == {"ide0": 6, "ide1": 2}


def test_process_fleet_accounting_exact_across_worker_counts():
    """The mixed schedule lands identical merged totals at 1, 2 and 3
    processes — sharding must not change what reaches the wire."""
    schedule = mixed_schedule(4)
    devices = ["ide", "permedia2", "ne2000"]
    reference = None
    for workers in (1, 2, 3):
        with ProcessFleet(devices, workers=workers) as fleet:
            fleet.run(schedule)
            accounting = fleet.accounting
            states = fleet.device_states()
        if reference is None:
            reference = (accounting, states)
        else:
            assert accounting == reference[0], f"{workers} workers"
            assert states == reference[1], f"{workers} workers"


def _exploding_request(stubs, aux):
    raise RuntimeError("request exploded in the worker")
