"""Behavioural tests for the 8237A DMA and 8259A PIC models."""

import pytest

from repro.bus import BusError
from repro.devices.dma8237 import Dma8237Model
from repro.devices.pic8259 import Pic8259Model


class TestDmaFlipFlop:
    def test_low_then_high_byte(self):
        dma = Dma8237Model()
        dma.io_write(12, 0, 8)          # reset flip-flop
        dma.io_write(2, 0x34, 8)        # channel 1 address low
        dma.io_write(2, 0x12, 8)        # high
        assert dma.channels[1].base_address == 0x1234

    def test_flip_flop_toggles_on_read_too(self):
        dma = Dma8237Model()
        dma.io_write(12, 0, 8)
        dma.io_write(3, 0xCD, 8)
        dma.io_write(3, 0xAB, 8)
        dma.io_write(12, 0, 8)
        assert dma.io_read(3, 8) == 0xCD
        assert dma.io_read(3, 8) == 0xAB

    def test_forgotten_reset_reads_garbage_order(self):
        """The classic bug Devil's pre-action prevents."""
        dma = Dma8237Model()
        dma.io_write(12, 0, 8)
        dma.io_write(3, 0xCD, 8)   # flip-flop now points at high byte
        dma.io_write(12, 0, 8)
        dma.io_read(3, 8)          # low
        dma.io_write(3, 0x99, 8)   # *intended* as low byte, lands high
        assert dma.channels[1].base_count != 0x99CD or True
        assert dma.channels[1].base_count & 0xFF00 == 0x9900


class TestDmaControl:
    def test_mask_and_mode(self):
        dma = Dma8237Model()
        dma.io_write(10, 0b001, 8)      # unmask channel 1
        assert not dma.channels[1].masked
        dma.io_write(11, 0b01000101, 8)  # single, read, channel 1
        assert dma.channels[1].mode == 0b01000101

    def test_master_clear(self):
        dma = Dma8237Model()
        dma.io_write(10, 0b001, 8)
        dma.flip_flop_high = True
        dma.io_write(13, 0, 8)
        assert dma.channels[1].masked
        assert not dma.flip_flop_high

    def test_all_mask_register(self):
        dma = Dma8237Model()
        dma.io_write(15, 0b0101, 8)
        assert dma.io_read(15, 8) == 0b0101

    def test_clear_mask_register(self):
        dma = Dma8237Model()
        dma.io_write(14, 0, 8)
        assert dma.io_read(15, 8) == 0


class TestDmaTransfers:
    def _program(self, dma, channel, address, count, mode_bits):
        dma.io_write(12, 0, 8)
        dma.io_write(channel * 2, address & 0xFF, 8)
        dma.io_write(channel * 2, address >> 8, 8)
        dma.io_write(12, 0, 8)
        dma.io_write(channel * 2 + 1, count & 0xFF, 8)
        dma.io_write(channel * 2 + 1, count >> 8, 8)
        dma.io_write(11, mode_bits | channel, 8)
        dma.io_write(10, channel, 8)  # unmask

    def test_memory_read_transfer(self):
        dma = Dma8237Model()
        memory = bytearray(0x10000)
        memory[0x2000:0x2004] = b"ABCD"
        self._program(dma, 1, 0x2000, 3, 0b01001000)  # read, single
        out = dma.run_channel(1, memory)
        assert out == b"ABCD"
        assert dma.channels[1].current_count == 0xFFFF
        status = dma.io_read(8, 8)
        assert status & 0b0010  # TC channel 1

    def test_memory_write_transfer(self):
        dma = Dma8237Model()
        memory = bytearray(0x10000)
        self._program(dma, 2, 0x3000, 3, 0b01000100)  # write, single
        dma.run_channel(2, memory, device_data=b"WXYZ")
        assert memory[0x3000:0x3004] == b"WXYZ"

    def test_autoinit_reloads(self):
        dma = Dma8237Model()
        memory = bytearray(0x10000)
        self._program(dma, 0, 0x100, 1, 0b01011000)  # read + autoinit
        dma.run_channel(0, memory)
        assert dma.channels[0].current_address == 0x100
        assert dma.channels[0].current_count == 1

    def test_masked_channel_refuses(self):
        dma = Dma8237Model()
        with pytest.raises(BusError):
            dma.run_channel(0, bytearray(16))

    def test_status_read_clears_tc(self):
        dma = Dma8237Model()
        memory = bytearray(0x10000)
        self._program(dma, 1, 0, 0, 0b01001000)
        dma.run_channel(1, memory)
        dma.io_read(8, 8)
        assert dma.io_read(8, 8) & 0x0F == 0


def init_pic(pic, icw1, icw2, icw3=None, icw4=None):
    pic.io_write(0, icw1, 8)
    pic.io_write(1, icw2, 8)
    if icw3 is not None:
        pic.io_write(1, icw3, 8)
    if icw4 is not None:
        pic.io_write(1, icw4, 8)


class TestPicInitSequence:
    def test_cascaded_with_icw4(self):
        pic = Pic8259Model()
        init_pic(pic, 0x11, 0x20, 0x04, 0x01)
        assert pic.init_log == [(0x11, 0x20, 0x04, 0x01)]
        assert pic.vector_base == 0x20
        assert pic.slave_mask == 0x04

    def test_single_mode_skips_icw3(self):
        pic = Pic8259Model()
        init_pic(pic, 0x13, 0x40, icw3=None, icw4=0x01)
        assert pic.init_log == [(0x13, 0x40, 0x01)]

    def test_minimal_sequence(self):
        pic = Pic8259Model()
        init_pic(pic, 0x12, 0x60)
        assert pic.init_log == [(0x12, 0x60)]

    def test_port1_after_init_is_mask(self):
        pic = Pic8259Model()
        init_pic(pic, 0x12, 0x60)
        pic.io_write(1, 0xFE, 8)
        assert pic.imr == 0xFE
        assert pic.io_read(1, 8) == 0xFE


class TestPicInterruptCycle:
    def _ready(self):
        pic = Pic8259Model()
        init_pic(pic, 0x11, 0x20, 0x04, 0x01)
        pic.io_write(1, 0x00, 8)  # unmask everything
        return pic

    def test_acknowledge_returns_vector(self):
        pic = self._ready()
        pic.raise_irq(3)
        assert pic.acknowledge() == 0x23
        assert pic.isr == 0b1000

    def test_priority_order(self):
        pic = self._ready()
        pic.raise_irq(5)
        pic.raise_irq(1)
        assert pic.acknowledge() == 0x21

    def test_masked_line_not_delivered(self):
        pic = self._ready()
        pic.io_write(1, 0xFF, 8)
        pic.raise_irq(2)
        assert not pic.has_pending()
        assert pic.acknowledge() is None

    def test_nonspecific_eoi_clears_highest(self):
        pic = self._ready()
        pic.raise_irq(2)
        pic.acknowledge()
        pic.io_write(0, 0x20, 8)  # OCW2 non-specific EOI
        assert pic.isr == 0

    def test_specific_eoi(self):
        pic = self._ready()
        pic.raise_irq(4)
        pic.acknowledge()
        pic.io_write(0, 0x60 | 4, 8)
        assert pic.isr == 0

    def test_ocw3_selects_isr_read(self):
        pic = self._ready()
        pic.raise_irq(1)
        pic.acknowledge()
        pic.io_write(0, 0x0B, 8)  # OCW3: read ISR
        assert pic.io_read(0, 8) == 0b10
        pic.io_write(0, 0x0A, 8)  # OCW3: read IRR
        assert pic.io_read(0, 8) == 0

    def test_poll_mode(self):
        pic = self._ready()
        pic.raise_irq(6)
        pic.io_write(0, 0x0C, 8)  # OCW3 with poll
        assert pic.io_read(0, 8) == 0x80 | 6

    def test_aeoi_mode_skips_isr(self):
        pic = Pic8259Model()
        init_pic(pic, 0x13, 0x20, icw4=0x03)  # AEOI
        pic.io_write(1, 0x00, 8)
        pic.raise_irq(0)
        assert pic.acknowledge() == 0x20
        assert pic.isr == 0

    def test_bad_irq_line(self):
        with pytest.raises(ValueError):
            Pic8259Model().raise_irq(9)
