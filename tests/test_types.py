"""Unit tests for the Devil type system."""

import pytest

from repro.devil.errors import DevilRuntimeError
from repro.devil.types import (
    BoolType,
    EnumDirection,
    EnumItem,
    EnumType,
    IntSetType,
    IntType,
)


class TestBoolType:
    def test_width_and_roundtrip(self):
        t = BoolType()
        assert t.width == 1
        assert t.encode(True) == 1
        assert t.decode(0) is False

    def test_int_zero_one_accepted(self):
        t = BoolType()
        assert t.encode(1) == 1
        assert t.encode(0) == 0

    def test_rejects_other_values(self):
        with pytest.raises(DevilRuntimeError):
            BoolType().encode(2)

    def test_exhaustive(self):
        assert BoolType().decode_is_exhaustive()


class TestIntType:
    def test_unsigned_range(self):
        t = IntType(8)
        assert (t.minimum, t.maximum) == (0, 255)

    def test_signed_range(self):
        t = IntType(8, signed=True)
        assert (t.minimum, t.maximum) == (-128, 127)

    def test_signed_encode_two_complement(self):
        t = IntType(8, signed=True)
        assert t.encode(-3) == 0xFD

    def test_signed_decode_sign_extends(self):
        t = IntType(8, signed=True)
        assert t.decode(0xFD) == -3
        assert t.decode(0x7F) == 127

    def test_encode_out_of_range(self):
        with pytest.raises(DevilRuntimeError):
            IntType(4).encode(16)
        with pytest.raises(DevilRuntimeError):
            IntType(4, signed=True).encode(8)

    def test_bool_is_not_an_integer_value(self):
        assert not IntType(8).contains(True)

    def test_str(self):
        assert str(IntType(8, signed=True)) == "signed int(8)"


class TestIntSetType:
    def test_width_from_maximum(self):
        assert IntSetType(frozenset(range(32))).width == 5
        assert IntSetType(frozenset({0, 17, 25})).width == 5

    def test_membership(self):
        t = IntSetType(frozenset(range(18)) | {25})
        assert t.contains(17)
        assert not t.contains(20)

    def test_decode_rejects_nonmembers(self):
        t = IntSetType(frozenset({0, 1}))
        t_exhaustive = IntSetType(frozenset({0, 1, 2, 3}))
        assert t_exhaustive.decode(3) == 3
        with pytest.raises(DevilRuntimeError):
            IntSetType(frozenset({0, 2})).decode(1)

    def test_exhaustiveness(self):
        assert IntSetType(frozenset(range(32))).decode_is_exhaustive()
        assert not IntSetType(frozenset({0, 17, 25})).decode_is_exhaustive()

    def test_rendering_collapses_ranges(self):
        t = IntSetType(frozenset(range(18)) | {25})
        assert str(t) == "int{0..17,25}"

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            IntSetType(frozenset())

    def test_negative_members_rejected(self):
        with pytest.raises(ValueError):
            IntSetType(frozenset({-1, 0}))


def _enum(*items):
    return EnumType(tuple(EnumItem(n, p, d) for n, p, d in items))


class TestEnumType:
    def test_figure_one_config_enum(self):
        t = _enum(("CONFIGURATION", "1", EnumDirection.WRITE),
                  ("DEFAULT_MODE", "0", EnumDirection.WRITE))
        assert t.width == 1
        assert t.encode("CONFIGURATION") == 1
        assert not t.can_decode()
        assert t.can_encode()

    def test_decode_by_symbol(self):
        t = _enum(("ENABLE", "0", EnumDirection.BOTH),
                  ("DISABLE", "1", EnumDirection.BOTH))
        assert t.decode(1) == "DISABLE"

    def test_read_only_symbol_not_writable(self):
        t = _enum(("RUNNING", "1", EnumDirection.READ),
                  ("STOP", "0", EnumDirection.BOTH))
        with pytest.raises(DevilRuntimeError):
            t.encode("RUNNING")

    def test_unknown_symbol(self):
        t = _enum(("A", "0", EnumDirection.BOTH),
                  ("B", "1", EnumDirection.BOTH))
        with pytest.raises(DevilRuntimeError):
            t.encode("C")

    def test_decode_unmapped_value(self):
        t = _enum(("A", "00", EnumDirection.BOTH))
        with pytest.raises(DevilRuntimeError):
            t.decode(0b11)

    def test_exhaustiveness(self):
        exhaustive = _enum(("A", "0", EnumDirection.BOTH),
                           ("B", "1", EnumDirection.READ))
        assert exhaustive.decode_is_exhaustive()
        partial = _enum(("A", "00", EnumDirection.BOTH))
        assert not partial.decode_is_exhaustive()

    def test_mixed_widths_rejected(self):
        with pytest.raises(ValueError):
            _enum(("A", "0", EnumDirection.BOTH),
                  ("B", "10", EnumDirection.BOTH))

    def test_directions(self):
        assert EnumDirection.READ.readable
        assert not EnumDirection.READ.writable
        assert EnumDirection.WRITE.writable
        assert EnumDirection.BOTH.readable and EnumDirection.BOTH.writable
