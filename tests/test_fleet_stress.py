"""Coverage for :mod:`repro.engine.stress` — the exactness harness
itself.

The stress helpers are what the benchmarks and the property suite
lean on for "lost nothing, tore nothing" claims, so they get direct
tests: the fingerprint normalizer's contract, a seeded stress run
under both backends (exactness plus no dropped trace entries), and
the negative case — a harness that cannot detect divergence would
pass everything, so we prove it fails on a corrupted reference.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    Fleet,
    fingerprint,
    fleet_fingerprint,
    ide_sector_read,
    mixed_schedule,
    run_stress,
)

pytestmark = pytest.mark.concurrency

DEVICES = ["ide", "permedia2", "ne2000"]


# ---------------------------------------------------------------------------
# fingerprint / fleet_fingerprint
# ---------------------------------------------------------------------------


def test_fingerprint_normalizes_mutable_containers():
    assert fingerprint(bytearray(b"ab")) == b"ab"
    assert fingerprint({"b": 2, "a": 1}) == (("a", 1), ("b", 2))
    assert fingerprint([1, (2, 3)]) == (1, (2, 3))
    assert fingerprint({3, 1, 2}) == tuple(sorted(["1", "2", "3"]))


def test_fingerprint_handles_cycles_and_objects():
    class Model:
        def __init__(self):
            self.ram = bytearray(b"\x01\x02")
            self.other = None

    first, second = Model(), Model()
    first.other, second.other = second, first  # a cycle
    printed = fingerprint(first)
    assert printed[0] == "Model"
    assert "<cycle>" in repr(printed)
    # Equal graphs fingerprint equal; a one-byte flip does not.
    third, fourth = Model(), Model()
    third.other, fourth.other = fourth, third
    assert fingerprint(third) == printed
    third.ram[0] ^= 0x01
    assert fingerprint(third) != printed


def test_fleet_fingerprint_distinguishes_device_state():
    with Fleet(["ide", "ide"], workers=1) as fleet:
        before = fleet_fingerprint(fleet)
        fleet.run([("ide", ide_sector_read)])
        after = fleet_fingerprint(fleet)
    labels = [label for label, _ in after]
    assert labels == ["ide0", "ide1"]
    # The read mutated ide0's model (status/shadow registers) only.
    assert after[0] != before[0]
    assert after[1] == before[1]


# ---------------------------------------------------------------------------
# run_stress: both backends, tracing, reference reuse
# ---------------------------------------------------------------------------


def test_run_stress_thread_backend_with_tracing():
    schedule = mixed_schedule(6)
    reference = run_stress(DEVICES, schedule, workers=4,
                           tracing=True)
    assert reference["trace_dropped"] == 0
    assert reference["trace_len"] > 0
    # The returned reference amortizes the serial run across calls.
    again = run_stress(DEVICES, schedule, workers=2, tracing=True,
                       reference=reference)
    assert again is reference


def test_run_stress_process_backend_matches_serial_reference():
    schedule = mixed_schedule(6)
    reference = run_stress(DEVICES, schedule, workers=2,
                           backend="process", tracing=True)
    # Batched and ring-less transports against the same reference.
    run_stress(DEVICES, schedule, workers=2, backend="process",
               tracing=True, reference=reference, batch_size=8)
    run_stress(DEVICES, schedule, workers=2, backend="process",
               tracing=True, reference=reference, ring_bytes=0)


def test_run_stress_rejects_unknown_backend():
    with pytest.raises(ValueError, match="backend"):
        run_stress(DEVICES, mixed_schedule(1), backend="quantum")


def test_run_stress_detects_divergence():
    """A corrupted reference must fail loudly — the harness's whole
    job is telling exact from almost-exact."""
    schedule = mixed_schedule(3)
    reference = run_stress(DEVICES, schedule, workers=2)

    poisoned = dict(reference)
    poisoned["states"] = dict(reference["states"])
    name = next(iter(poisoned["states"]))
    poisoned["states"][name] = b"corrupted"
    with pytest.raises(AssertionError, match="device state diverged"):
        run_stress(DEVICES, schedule, workers=2, reference=poisoned)

    from repro.bus import IoAccounting
    poisoned = dict(reference)
    poisoned["accounting"] = IoAccounting(reads=1)
    with pytest.raises(AssertionError, match="accounting diverged"):
        run_stress(DEVICES, schedule, workers=2, reference=poisoned)


def test_run_stress_flags_dropped_trace_entries():
    """tracing=True is a completeness claim: a parallel fleet whose
    bounded trace ring evicted entries must fail the stress run even
    though accounting and end-state still match exactly."""
    schedule = mixed_schedule(4)
    with pytest.raises(AssertionError, match="dropped"):
        run_stress(DEVICES, schedule, workers=2, tracing=True,
                   trace_limit=5)


# ---------------------------------------------------------------------------
# Live-plane fault injection: a wedged process worker
# ---------------------------------------------------------------------------


def test_process_wedged_worker_reported_stalled(tmp_path):
    """Deterministic stall detection: a process worker wedged inside a
    request is reported ``stalled`` within the detector window, the
    flight recorder auto-dumps a post-mortem, and the fleet still
    drains cleanly (and recovers) once the wedge releases."""
    import functools
    import json
    import time

    from repro.engine import MIXED_REQUESTS, ProcessFleet, \
        wedged_request
    from repro.obs.validate import load_schema, validate

    dump = tmp_path / "flight.jsonl"
    fleet = ProcessFleet(["ide", "permedia2"], workers=2,
                         telemetry=True)
    fleet.telemetry.dump_path = str(dump)
    with fleet:
        # Devices shard index % workers: "ide" lands on pfleet-w0.
        health = fleet.health_view(stall_after=0.3)
        fleet.submit("ide", functools.partial(wedged_request,
                                              seconds=2.0))
        for _ in range(4):
            fleet.submit("permedia2", MIXED_REQUESTS["permedia2"])

        deadline = time.monotonic() + 15.0
        statuses = {}
        while time.monotonic() < deadline:
            statuses = health.statuses()
            if statuses.get("pfleet-w0") == "stalled":
                break
            time.sleep(0.05)
        assert statuses.get("pfleet-w0") == "stalled", statuses
        assert statuses.get("pfleet-w1") == "healthy", statuses

        kinds = [event.kind for event
                 in fleet.telemetry.recorder.events()]
        assert "stall" in kinds
        assert "dump" in kinds
        assert dump.exists()

        fleet.drain()  # the wedge releases; nothing was lost
        assert health.statuses()["pfleet-w0"] == "healthy"
        kinds = [event.kind for event
                 in fleet.telemetry.recorder.events()]
        assert "recovered" in kinds
        assert fleet.completed() == 5

    schema = load_schema()
    records = [json.loads(line)
               for line in dump.read_text().splitlines()]
    assert any(record["kind"] == "stall" for record in records)
    for record in records:
        validate(record, schema)
