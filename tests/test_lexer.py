"""Unit tests for the Devil lexer."""

import pytest

from repro.devil.errors import DevilLexError
from repro.devil.lexer import KEYWORDS, Lexer, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]  # drop EOF


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_identifier(self):
        (token,) = tokenize("sig_reg")[:-1]
        assert token.kind is TokenKind.IDENT
        assert token.text == "sig_reg"

    def test_keywords_are_distinguished(self):
        tokens = tokenize("register foo")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENT

    def test_all_keywords_lex_as_keywords(self):
        for word in KEYWORDS:
            (token,) = tokenize(word)[:-1]
            assert token.kind is TokenKind.KEYWORD, word

    def test_decimal_integer(self):
        (token,) = tokenize("42")[:-1]
        assert token.kind is TokenKind.INT
        assert token.value == 42

    def test_hex_integer(self):
        (token,) = tokenize("0x3C")[:-1]
        assert token.value == 0x3C

    def test_binary_integer(self):
        (token,) = tokenize("0b1011")[:-1]
        assert token.value == 0b1011

    def test_bit_pattern(self):
        (token,) = tokenize("'1001000.'")[:-1]
        assert token.kind is TokenKind.BITPATTERN
        assert token.text == "1001000."

    def test_bit_pattern_with_all_classes(self):
        (token,) = tokenize("'01.*-'")[:-1]
        assert token.text == "01.*-"

    def test_eof_token_terminates(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF


class TestPunctuation:
    @pytest.mark.parametrize("source,kind", [
        ("@", TokenKind.AT),
        ("#", TokenKind.HASH),
        ("..", TokenKind.DOTDOT),
        ("=", TokenKind.ASSIGN),
        ("==", TokenKind.EQ),
        ("=>", TokenKind.ARROW_WRITE),
        ("<=", TokenKind.ARROW_READ),
        ("<=>", TokenKind.ARROW_BOTH),
        ("*", TokenKind.STAR),
        ("{", TokenKind.LBRACE),
        (";", TokenKind.SEMICOLON),
    ])
    def test_single_punctuation(self, source, kind):
        (token,) = tokenize(source)[:-1]
        assert token.kind is kind

    def test_arrow_both_beats_arrow_read(self):
        assert kinds("<=>") == [TokenKind.ARROW_BOTH]

    def test_range_vs_two_numbers(self):
        assert kinds("6..5") == [TokenKind.INT, TokenKind.DOTDOT,
                                 TokenKind.INT]

    def test_eq_vs_two_assigns(self):
        assert kinds("==") == [TokenKind.EQ]


class TestComments:
    def test_line_comment(self):
        assert texts("foo // comment\nbar") == ["foo", "bar"]

    def test_block_comment(self):
        assert texts("foo /* x\ny */ bar") == ["foo", "bar"]

    def test_unterminated_block_comment(self):
        with pytest.raises(DevilLexError):
            tokenize("/* never closed")


class TestLocations:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_filename_propagates(self):
        token = tokenize("x", filename="m.devil")[0]
        assert token.location.filename == "m.devil"


class TestErrors:
    def test_unterminated_bit_pattern(self):
        with pytest.raises(DevilLexError):
            tokenize("'101")

    def test_empty_bit_pattern(self):
        with pytest.raises(DevilLexError):
            tokenize("''")

    def test_invalid_bit_pattern_character(self):
        with pytest.raises(DevilLexError):
            tokenize("'1012'")

    def test_stray_character(self):
        with pytest.raises(DevilLexError):
            tokenize("$")

    def test_identifier_starting_with_digit(self):
        with pytest.raises(DevilLexError):
            tokenize("1abc")

    def test_incomplete_hex(self):
        with pytest.raises(DevilLexError):
            tokenize("0x")

    def test_invalid_hex_digits(self):
        with pytest.raises(DevilLexError):
            tokenize("0xZZ")


class TestFigureOne:
    """The complete Figure 1 specification must tokenize."""

    def test_busmouse_source_tokenizes(self):
        from repro.specs import load_source
        tokens = tokenize(load_source("busmouse"))
        assert tokens[-1].kind is TokenKind.EOF
        assert len(tokens) > 100

    def test_iterator_form_matches_list_form(self):
        source = "device d (p : bit[8] port @ {0..1}) { }"
        assert list(Lexer(source).tokens()) == tokenize(source)
