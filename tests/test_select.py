"""The adaptive backend selector: calibration, decision, wiring.

The selector's claims are testable without trusting wall-clock
absolutes: calibration must profile each distinct request kind once
(weighted by schedule frequency), the decision function is pure given
profiles and a CPU count, and ``Fleet.auto`` must return a working
fleet of the chosen backend with the verdict attached.
"""

from __future__ import annotations

import functools

import pytest

from repro.engine import (
    Fleet,
    KindProfile,
    ProcessFleet,
    auto_fleet,
    batch_size_for,
    calibrate,
    decide,
    ide_sector_checksum,
    ide_sector_read,
    ide_sector_read_lba,
    mixed_schedule,
)
from repro.engine.select import (
    CPU_BOUND_THRESHOLD,
    IPC_BUDGET_FRACTION,
    IPC_COST_S,
    MAX_BATCH,
)

pytestmark = pytest.mark.concurrency


def _profile(wall_us: float, cpu_us: float, count: int = 1,
             spec: str = "ide") -> KindProfile:
    return KindProfile(spec=spec, request="synthetic", count=count,
                       wall_s=wall_us * 1e-6, cpu_s=cpu_us * 1e-6)


# ---------------------------------------------------------------------------
# batch_size_for: the IPC amortization arithmetic
# ---------------------------------------------------------------------------


def test_batch_size_amortizes_ipc_to_budget():
    # A request slower than IPC/budget needs no batching.
    assert batch_size_for(IPC_COST_S / IPC_BUDGET_FRACTION) == 1
    # Ten times faster needs a batch of ten.
    assert batch_size_for(IPC_COST_S / IPC_BUDGET_FRACTION / 10) == 10
    # Degenerate inputs clamp instead of exploding.
    assert batch_size_for(0.0) == MAX_BATCH
    assert batch_size_for(1e-12) == MAX_BATCH
    assert batch_size_for(1e9) == 1


# ---------------------------------------------------------------------------
# decide: pure given profiles + cpu_count
# ---------------------------------------------------------------------------


def test_decide_prefers_threads_on_one_cpu():
    choice = decide([_profile(2000, 2000)], cpu_count=1)
    assert choice.backend == "thread"
    assert choice.batch_size == 1
    assert "1 CPU" in choice.reason


def test_decide_picks_processes_for_gil_bound_mixes():
    choice = decide([_profile(2000, 1900)], cpu_count=4)
    assert choice.backend == "process"
    assert choice.cpu_fraction >= CPU_BOUND_THRESHOLD
    assert choice.batch_size >= 1


def test_decide_picks_processes_for_slow_io_and_threads_for_fast():
    # 500µs sleeping requests: batching amortizes IPC comfortably.
    slow = decide([_profile(500, 50)], cpu_count=4)
    assert slow.backend == "process"
    assert slow.batch_size == batch_size_for(500e-6)
    # Sub-microsecond requests can't amortize IPC even at MAX_BATCH.
    fast = decide([_profile(0.1, 0.01)], cpu_count=8)
    assert fast.backend == "thread"
    assert "too cheap" in fast.reason


def test_decide_weights_kinds_by_schedule_frequency():
    # One rare CPU hog vs many cheap I/O polls: frequency decides.
    profiles = [_profile(2000, 2000, count=1),
                _profile(2000, 100, count=99)]
    io_heavy = decide(profiles, cpu_count=4)
    assert io_heavy.cpu_fraction < CPU_BOUND_THRESHOLD
    cpu_heavy = decide([_profile(2000, 2000, count=99),
                        _profile(2000, 100, count=1)], cpu_count=4)
    assert cpu_heavy.cpu_fraction >= CPU_BOUND_THRESHOLD
    assert cpu_heavy.backend == "process"


def test_decide_handles_an_empty_schedule():
    choice = decide([], cpu_count=8)
    assert choice.backend == "thread"
    assert choice.batch_size == 1


# ---------------------------------------------------------------------------
# calibrate: one burst per distinct kind
# ---------------------------------------------------------------------------


def test_calibrate_profiles_each_kind_once_with_counts():
    schedule = mixed_schedule(5) + [("ide", ide_sector_read)] * 3
    profiles = calibrate(schedule, rounds=2)
    by_request = {p.request: p for p in profiles}
    assert len(profiles) == 3  # ide/pm2/ne2000 kinds, deduplicated
    assert by_request["ide_sector_read"].count == 8  # 5 mixed + 3
    for profile in profiles:
        assert profile.wall_s > 0
        assert profile.cpu_s >= 0


def test_calibrate_distinguishes_partial_bindings():
    schedule = [
        ("ide", functools.partial(ide_sector_read_lba, lba=3)),
        ("ide", functools.partial(ide_sector_read_lba, lba=4)),
        ("ide", ide_sector_read),
    ]
    profiles = calibrate(schedule, rounds=1)
    assert len(profiles) == 3  # different bindings are different kinds


def test_calibrate_sees_the_latency_model():
    quiet = calibrate([("ide", ide_sector_read)], rounds=2)
    slow = calibrate([("ide", ide_sector_read)], rounds=2,
                     op_latency_us=200.0)
    assert slow[0].wall_s > quiet[0].wall_s
    assert slow[0].cpu_fraction < 0.9


def test_calibrate_rejects_unshippable_requests():
    with pytest.raises(ValueError):
        calibrate([("ide", lambda stubs, aux: None)])


# ---------------------------------------------------------------------------
# auto_fleet / Fleet.auto: end-to-end wiring
# ---------------------------------------------------------------------------


def test_fleet_auto_builds_the_chosen_backend_and_runs():
    schedule = [("ide", ide_sector_checksum)] * 4
    with Fleet.auto(["ide", "ide"], schedule, workers=2,
                    cpu_count=4) as fleet:
        assert isinstance(fleet, ProcessFleet)
        assert fleet.choice.backend == "process"
        assert fleet.batch_size == fleet.choice.batch_size
        fleet.run(schedule)
        assert fleet.completed() == len(schedule)

    with Fleet.auto(["ide", "ide"], schedule, workers=2,
                    cpu_count=1) as fleet:
        assert isinstance(fleet, Fleet)
        assert fleet.choice.backend == "thread"
        fleet.run(schedule)
        assert fleet.completed() == len(schedule)


def test_auto_fleet_forwards_fleet_kwargs():
    schedule = mixed_schedule(2)
    devices = ["ide", "permedia2", "ne2000"]
    with auto_fleet(devices, schedule, workers=2, cpu_count=1,
                    shadow_cache=True,
                    policy="round-robin") as fleet:
        fleet.run(schedule)
        assert fleet.completed() == len(schedule)
        assert fleet.choice.cpu_count == 1
        assert fleet.choice.profiles  # calibration evidence attached
