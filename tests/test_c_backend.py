"""Tests for the C stub generator, including gcc cross-validation.

The strongest test here compiles the generated busmouse header with a
real C compiler, runs it against a C transliteration of the simulated
mouse, and asserts that the I/O trace is byte-for-byte identical to
what the Python runtime produces for the same driver sequence — the
two backends implement one semantics.
"""

import shutil
import subprocess
import tempfile
from pathlib import Path

import pytest

from repro.bus import Bus
from repro.devices.busmouse import BusmouseModel
from repro.specs import SPEC_NAMES
from tests.conftest import shipped_spec

HAVE_GCC = shutil.which("gcc") is not None


class TestHeaderShape:
    def test_include_guard(self):
        header = shipped_spec("busmouse").emit_c(prefix="bm")
        assert "#ifndef DEVIL_BM_DIL_H" in header
        assert header.rstrip().endswith("#endif /* DEVIL_BM_DIL_H */")

    def test_state_struct_contains_caches(self):
        header = shipped_spec("busmouse").emit_c(prefix="bm")
        assert "typedef struct bm_state {" in header
        assert "unsigned cache_y_high;" in header
        assert "unsigned port_base;" in header

    def test_figure_3c_mask_constants(self):
        """The generated get_dy must AND with 0xf and shift by 4."""
        header = shipped_spec("busmouse").emit_c(prefix="bm")
        assert "bm__get_dy" in header
        dy_body = header.split("bm__get_dy")[2]
        assert "0xf" in dy_body

    def test_private_variables_not_exported_in_noref(self):
        header = shipped_spec("busmouse").emit_c(prefix="bm")
        noref = header.split("#ifdef DEVIL_NO_REF")[1]
        assert "bm_set_index" not in noref
        assert "bm_get_dx()" in noref

    def test_debug_checks_guarded(self):
        header = shipped_spec("busmouse").emit_c(prefix="bm")
        assert "#ifdef DEVIL_DEBUG" in header
        assert "DEVIL_CHECK" in header

    def test_forced_debug_mode(self):
        header = shipped_spec("busmouse").emit_c(prefix="bm", debug=True)
        assert "#define DEVIL_DEBUG 1" in header

    def test_enum_constants(self):
        header = shipped_spec("busmouse").emit_c(prefix="bm")
        assert "BM_CONFIGURATION = 1" in header
        assert "BM_DEFAULT_MODE = 0" in header

    def test_block_stubs_use_rep_primitives(self):
        header = shipped_spec("ide").emit_c(prefix="ide")
        assert "devil_in_rep" in header
        assert "ide__read_ide_data_block" in header

    def test_conditional_serialization_generates_if(self):
        header = shipped_spec("pic8259").emit_c(prefix="pic")
        setter = header.split("pic__set_init")[2]
        assert "if (raw_sngl == 0x0u)" in setter
        assert "if (raw_ic4 == 0x1u)" in setter

    def test_trigger_neutral_constants_folded(self):
        import re
        header = shipped_spec("ne2000").emit_c(prefix="ne")
        # Writing `page` composes NODMA (100b at bits 5..3 => 0x20).
        match = re.search(
            r"static inline void ne__set_page\(ne_state_t \*d, "
            r"unsigned value\)\n\{.*?\n\}", header, re.S)
        assert match is not None
        assert "0x20" in match.group(0)


@pytest.mark.skipif(not HAVE_GCC, reason="gcc not available")
class TestGccCompilation:
    @pytest.mark.parametrize("debug", [True, False],
                             ids=["debug", "release"])
    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_header_compiles_with_warnings_as_errors(self, name, debug):
        header = shipped_spec(name).emit_c(prefix=name[:3])
        define = "#define DEVIL_DEBUG" if debug else ""
        with tempfile.TemporaryDirectory() as workdir:
            work = Path(workdir)
            (work / f"{name}.dil.h").write_text(header)
            (work / "main.c").write_text(f'''
unsigned devil_in(unsigned port, int width);
void devil_out(unsigned value, unsigned port, int width);
void devil_in_rep(unsigned port, int width, unsigned long count,
                  unsigned *buffer);
void devil_out_rep(unsigned port, int width, unsigned long count,
                   const unsigned *buffer);
#define DEVIL_IO_DECLARED
{define}
#include "{name}.dil.h"
int main(void) {{ {name[:3]}_state_t s; (void)s; return 0; }}
''')
            result = subprocess.run(
                ["gcc", "-Wall", "-Wextra", "-Werror", "-std=c99",
                 "-c", "main.c", "-o", "main.o"],
                cwd=work, capture_output=True, text=True)
            assert result.returncode == 0, result.stderr


class TestHeaderMemoization:
    def test_same_device_same_flags_is_cached(self):
        model = shipped_spec("busmouse").model
        from repro.devil.codegen.c_backend import generate_c_header
        first = generate_c_header(model, debug=True)
        second = generate_c_header(model, debug=True)
        assert first is second              # memo hit, not a re-emit

    def test_flags_key_the_memo(self):
        model = shipped_spec("dma8237").model
        from repro.devil.codegen.c_backend import generate_c_header
        debug = generate_c_header(model, debug=True)
        release = generate_c_header(model, debug=False)
        assert debug is not release
        assert "#define DEVIL_DEBUG 1" in debug
        assert "#define DEVIL_DEBUG 1" not in release
        assert generate_c_header(model, debug=False) is release

    def test_prefix_keys_the_memo(self):
        model = shipped_spec("pic8259").model
        from repro.devil.codegen.c_backend import generate_c_header
        default = generate_c_header(model)
        prefixed = generate_c_header(model, prefix="pic")
        assert default is not prefixed
        assert generate_c_header(model, prefix="pic") is prefixed


class TestPyiStubs:
    """The checked-in .pyi stubs must match what the backend emits."""

    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_shipped_stub_is_fresh(self, name):
        from repro.devil.codegen.pyi_backend import generate_pyi
        stub_path = Path(__file__).parent.parent / "src" / "repro" / \
            "specs" / "stubs" / f"{name}.pyi"
        assert stub_path.exists(), \
            f"missing {stub_path}; regenerate with devilc compile " \
            f"--backend pyi"
        expected = generate_pyi(shipped_spec(name).model)
        assert stub_path.read_text() == expected, \
            f"{stub_path.name} is stale; regenerate with devilc " \
            f"compile --backend pyi"

    def test_stub_surface_matches_catalog(self):
        from repro.devil.codegen.pyi_backend import generate_pyi
        from repro.obs.spans import stub_catalog
        model = shipped_spec("busmouse").model
        text = generate_pyi(model)
        for stub, _target, _kind in stub_catalog(model):
            assert f"def {stub}(" in text

    def test_enum_setters_take_literals(self):
        from repro.devil.codegen.pyi_backend import generate_pyi
        text = generate_pyi(shipped_spec("busmouse").model)
        assert 'Literal["CONFIGURATION", "DEFAULT_MODE"]' in text


_C_HARNESS = r"""
#include <stdio.h>

static int mouse_index = 0;
static int dx = @DX@, dy = @DY@, buttons = @BUTTONS@;

unsigned devil_in(unsigned port, int width) {
    unsigned v = 0;
    (void)width;
    if (port == 0x23c) {
        unsigned udx = (unsigned)dx & 0xFF, udy = (unsigned)dy & 0xFF;
        switch (mouse_index) {
        case 0: v = udx & 0xF; break;
        case 1: v = (udx >> 4) & 0xF; break;
        case 2: v = udy & 0xF; break;
        case 3: v = ((unsigned)buttons << 5) | ((udy >> 4) & 0xF); break;
        }
    } else if (port == 0x23d) v = 0xA5;
    printf("r %x %x\n", port, v);
    return v;
}
void devil_out(unsigned value, unsigned port, int width) {
    (void)width;
    if (port == 0x23e && (value & 0x80)) mouse_index = (value >> 5) & 3;
    printf("w %x %x\n", port, value);
}
void devil_in_rep(unsigned port, int width, unsigned long n, unsigned *b)
{ (void)port; (void)width; (void)n; (void)b; }
void devil_out_rep(unsigned port, int width, unsigned long n,
                   const unsigned *b)
{ (void)port; (void)width; (void)n; (void)b; }
#define DEVIL_IO_DECLARED
#define DEVIL_DEBUG
#define DEVIL_NO_REF
#include "busmouse.dil.h"

int main(void) {
    bus_init(0x23c);
    bus_set_config(BUS_CONFIGURATION);
    bus_set_signature(0xA5);
    printf("sig %x\n", bus_get_signature());
    bus_get_mouse_state();
    printf("dx %d\n", bus_get_dx());
    printf("dy %d\n", bus_get_dy());
    printf("buttons %u\n", bus_get_buttons());
    return 0;
}
"""


@pytest.mark.skipif(not HAVE_GCC, reason="gcc not available")
class TestCrossValidation:
    @pytest.mark.parametrize("dx,dy,buttons", [
        (5, -3, 4), (0, 0, 0), (-128, 127, 7), (15, 16, 1),
    ])
    def test_c_and_python_traces_identical(self, dx, dy, buttons):
        header = shipped_spec("busmouse").emit_c(prefix="bus")
        with tempfile.TemporaryDirectory() as workdir:
            work = Path(workdir)
            (work / "busmouse.dil.h").write_text(header)
            harness = (_C_HARNESS
                       .replace("@DX@", str(dx))
                       .replace("@DY@", str(dy))
                       .replace("@BUTTONS@", str(buttons)))
            (work / "main.c").write_text(harness)
            subprocess.run(["gcc", "-Wall", "-Werror", "-std=c99",
                            "main.c", "-o", "harness"],
                           cwd=work, check=True, capture_output=True)
            output = subprocess.run(["./harness"], cwd=work, check=True,
                                    capture_output=True,
                                    text=True).stdout.splitlines()

        bus = Bus(tracing=True)
        mouse = BusmouseModel()
        mouse.move(dx, dy)
        mouse.set_buttons(buttons)
        mouse.signature = 0
        bus.map_device(0x23C, 4, mouse, "busmouse")
        device = shipped_spec("busmouse").bind(bus, {"base": 0x23C})
        device.set_config("CONFIGURATION")
        device.set_signature(0xA5)
        signature = device.get_signature()
        state = device.get_mouse_state()

        python_trace = [f"{e.op} {e.port:x} {e.value:x}"
                        for e in bus.trace]
        c_trace = [line for line in output
                   if line.startswith(("r ", "w "))]
        assert c_trace == python_trace
        results = {line.split()[0]: line.split()[1] for line in output
                   if not line.startswith(("r ", "w "))}
        assert int(results["sig"], 16) == signature
        assert int(results["dx"]) == state["dx"]
        assert int(results["dy"]) == state["dy"]
        assert int(results["buttons"]) == state["buttons"]
