"""Unit tests for the static checker: one test per §3.1 rule family."""

import pytest

from repro.devil.checker import check
from repro.devil.errors import DevilCheckError, DiagnosticSink
from repro.devil.parser import parse
from repro.devil.types import EnumType, IntSetType, IntType


def check_body(body: str, params: str = "base : bit[8] port @ {0..7}"):
    device = parse(f"device d ({params}) {{\n{body}\n}}")
    return check(device)


def errors_of(body: str, params: str = "base : bit[8] port @ {0..7}"):
    device = parse(f"device d ({params}) {{\n{body}\n}}")
    sink = DiagnosticSink()
    with pytest.raises(DevilCheckError):
        check(device, sink)
    return [d.message for d in sink.errors]


def warnings_of(body: str, params: str = "base : bit[8] port @ {0..7}"):
    device = parse(f"device d ({params}) {{\n{body}\n}}")
    sink = DiagnosticSink()
    check(device, sink)
    return [d.message for d in sink.warnings]


MINIMAL = ("register r = base @ 0 : bit[8];"
           "variable v = r : int(8);")


class TestAcceptance:
    def test_minimal_device(self):
        model = check_body(MINIMAL, params="base : bit[8] port @ {0}")
        assert "v" in model.variables
        assert model.variables["v"].type == IntType(8)

    def test_every_shipped_spec_checks(self, spec_name):
        from repro.specs import compile_shipped
        spec = compile_shipped(spec_name)
        assert spec.model.public_variables()


class TestStrongTyping:
    def test_unknown_port(self):
        messages = errors_of("register r = bogus @ 0 : bit[8];"
                             "variable v = r : int(8);",
                             params="base : bit[8] port @ {0}")
        assert any("unknown port" in m for m in messages)

    def test_offset_outside_range(self):
        messages = errors_of("register r = base @ 9 : bit[8];"
                             "variable v = r : int(8);")
        assert any("outside the declared range" in m for m in messages)

    def test_register_width_vs_port_width(self):
        messages = errors_of("register r = base @ 0 : bit[16];"
                             "variable v = r : int(16);",
                             params="base : bit[8] port @ {0}")
        assert any("data width" in m for m in messages)

    def test_register_needs_explicit_size(self):
        messages = errors_of("register r = base @ 0;"
                             "variable v = r : int(8);",
                             params="base : bit[8] port @ {0}")
        assert any("does not declare its size" in m for m in messages)

    def test_mask_width_mismatch(self):
        messages = errors_of("register r = base @ 0, mask '....' : bit[8];"
                             "variable v = r : int(8);",
                             params="base : bit[8] port @ {0}")
        assert any("mask" in m for m in messages)

    def test_bit_index_outside_register(self):
        messages = errors_of("register r = base @ 0 : bit[8];"
                             "variable v = r[8] : bool;",
                             params="base : bit[8] port @ {0}")
        assert any("outside the 8-bit register" in m for m in messages)

    def test_variable_width_vs_type_width(self):
        messages = errors_of("register r = base @ 0 : bit[8];"
                             "variable v = r[3..0] : int(8);"
                             "variable rest = r[7..4] : int(4);",
                             params="base : bit[8] port @ {0}")
        assert any("4 bit(s) wide but its type" in m for m in messages)

    def test_variable_on_forced_mask_bit(self):
        messages = errors_of(
            "register r = base @ 0, mask '0.......' : bit[8];"
            "variable v = r[7] : bool;"
            "variable rest = r[6..0] : int(7);",
            params="base : bit[8] port @ {0}")
        assert any("cannot belong to a variable" in m for m in messages)

    def test_enum_width_vs_variable_width(self):
        messages = errors_of(
            "register r = base @ 0 : bit[8];"
            "variable v = r[1..0] : { A <=> '1', B <=> '0' };"
            "variable rest = r[7..2] : int(6);",
            params="base : bit[8] port @ {0}")
        assert any("type" in m for m in messages)

    def test_memory_variable_needs_type(self):
        messages = errors_of(MINIMAL + "private variable m;",
                             params="base : bit[8] port @ {0}")
        assert any("explicit type" in m for m in messages)

    def test_memory_variable_must_be_private(self):
        messages = errors_of(MINIMAL + "variable m : bool;",
                             params="base : bit[8] port @ {0}")
        assert any("must be private" in m for m in messages)

    def test_action_constant_range_checked_statically(self):
        messages = errors_of(
            "register idx = write base @ 1 : bit[8];"
            "private variable i = idx[1..0] : int(2);"
            "variable rest = idx[7..2] : int(6);"
            "register r = read base @ 0, pre {i = 7} : bit[8];"
            "variable v = r : int(8);",
            params="base : bit[8] port @ {0..1}")
        assert any("outside" in m for m in messages)

    def test_action_on_unknown_variable(self):
        messages = errors_of(
            "register r = base @ 0, pre {nothing = 1} : bit[8];"
            "variable v = r : int(8);",
            params="base : bit[8] port @ {0}")
        assert any("unknown variable" in m for m in messages)

    def test_forced_bits_on_read_only_register(self):
        messages = errors_of(
            "register r = read base @ 0, mask '1.......' : bit[8];"
            "variable v = r[6..0] : int(7);",
            params="base : bit[8] port @ {0}")
        assert any("read-only register" in m for m in messages)

    def test_constructor_argument_type_checked(self):
        messages = errors_of(
            "register idx = write base @ 0 : bit[8];"
            "private variable ia = idx[4..0] : int{0..31};"
            "variable rest = idx[7..5] : int(3);"
            "register I(i : int{0..31}) = base @ 1, pre {ia = i} : bit[8];"
            "register I40 = I(40);"
            "variable v = I40 : int(8);",
            params="base : bit[8] port @ {0..1}")
        assert any("outside int{0..31}" in m for m in messages)

    def test_serialization_must_cover_exact_registers(self):
        messages = errors_of(
            "register lo = base @ 0 : bit[8];"
            "register hi = base @ 1 : bit[8];"
            "variable x = hi # lo : int(16) serialized as {lo; lo};",
            params="base : bit[8] port @ {0..1}")
        assert any("exactly once" in m for m in messages)


class TestNoOmission:
    def test_unused_port_parameter(self):
        messages = errors_of(
            MINIMAL,
            params="base : bit[8] port @ {0}, extra : bit[8] port @ {0}")
        assert any("never used" in m for m in messages)

    def test_unused_port_offset(self):
        messages = errors_of(MINIMAL,
                             params="base : bit[8] port @ {0..1}")
        assert any("declared but never used" in m for m in messages)

    def test_unused_register(self):
        messages = errors_of(
            MINIMAL + "register unused = base @ 1 : bit[8];",
            params="base : bit[8] port @ {0..1}")
        assert any("never used by any variable" in m for m in messages)

    def test_uncovered_register_bits(self):
        messages = errors_of("register r = base @ 0 : bit[8];"
                             "variable v = r[3..0] : int(4);",
                             params="base : bit[8] port @ {0}")
        assert any("not covered by any variable" in m for m in messages)

    def test_unused_named_type(self):
        messages = errors_of(
            "type t = { A <=> '1', B <=> '0' };" + MINIMAL,
            params="base : bit[8] port @ {0}")
        assert any("'t' is never used" in m for m in messages)

    def test_uninstantiated_constructor(self):
        messages = errors_of(
            "register idx = write base @ 0 : bit[8];"
            "private variable ia = idx[4..0] : int{0..31};"
            "variable rest = idx[7..5] : int(3);"
            "register I(i : int{0..31}) = base @ 1, pre {ia = i} : bit[8];",
            params="base : bit[8] port @ {0..1}")
        assert any("never instantiated" in m for m in messages)

    def test_readable_enum_must_be_exhaustive(self):
        messages = errors_of(
            "register r = base @ 0 : bit[8];"
            "variable v = r[1..0] : { A <=> '00', B <=> '01' };"
            "variable rest = r[7..2] : int(6);",
            params="base : bit[8] port @ {0}")
        assert any("not exhaustive" in m for m in messages)

    def test_read_mapping_on_write_only_variable(self):
        messages = errors_of(
            "register r = write base @ 0 : bit[8];"
            "variable v = r[0] : { A <=> '1', B <=> '0' };"
            "variable rest = r[7..1] : int(7);",
            params="base : bit[8] port @ {0}")
        assert any("write-only" in m for m in messages)

    def test_structure_write_requires_all_members(self):
        messages = errors_of(
            "register a = write base @ 0 : bit[8];"
            "structure s = {"
            "  variable lo = a[3..0] : int(4);"
            "  variable hi = a[7..4] : int(4);"
            "};"
            "register r = read base @ 1, pre {s = {lo => 1}} : bit[8];"
            "variable v = r : int(8);",
            params="base : bit[8] port @ {0..1}")
        assert any("every member" in m for m in messages)


class TestNoDoubleDefinition:
    def test_duplicate_register_name(self):
        messages = errors_of(
            "register r = base @ 0 : bit[8];"
            "register r = base @ 1 : bit[8];"
            "variable v = r : int(8);",
            params="base : bit[8] port @ {0..1}")
        assert any("already declared" in m for m in messages)

    def test_duplicate_variable_name(self):
        messages = errors_of(
            "register r = base @ 0 : bit[8];"
            "variable v = r[3..0] : int(4);"
            "variable v = r[7..4] : int(4);",
            params="base : bit[8] port @ {0}")
        assert any("already declared" in m for m in messages)

    def test_register_variable_namespace_shared(self):
        messages = errors_of(
            "register x = base @ 0 : bit[8];"
            "variable x = x : int(8);",
            params="base : bit[8] port @ {0}")
        assert any("already declared" in m for m in messages)

    def test_duplicate_enum_symbol(self):
        messages = errors_of(
            "register r = base @ 0 : bit[8];"
            "variable v = r[0] : { A <=> '1', A <=> '0' };"
            "variable rest = r[7..1] : int(7);",
            params="base : bit[8] port @ {0}")
        assert any("declared twice" in m for m in messages)

    def test_ambiguous_readable_patterns(self):
        messages = errors_of(
            "register r = base @ 0 : bit[8];"
            "variable v = r[0] : { A <=> '1', B <=> '1' };"
            "variable rest = r[7..1] : int(7);",
            params="base : bit[8] port @ {0}")
        assert any("ambiguous" in m for m in messages)


class TestNoOverlap:
    def test_bit_owned_by_two_variables(self):
        messages = errors_of(
            "register r = base @ 0 : bit[8];"
            "variable a = r[3..0] : int(4);"
            "variable b = r[4..1] : int(4);"
            "variable rest = r[7..5] : int(3);",
            params="base : bit[8] port @ {0}")
        assert any("belongs to both" in m for m in messages)

    def test_same_port_same_direction_no_disambiguation(self):
        messages = errors_of(
            "register a = base @ 0 : bit[8];"
            "register b = base @ 0 : bit[8];"
            "variable va = a : int(8);"
            "variable vb = b : int(8);",
            params="base : bit[8] port @ {0}")
        assert any("overlap on" in m for m in messages)

    def test_disjoint_masks_allowed(self):
        check_body(
            "register a = write base @ 0, mask '....----' : bit[8];"
            "register b = write base @ 0, mask '----....' : bit[8];"
            "variable va = a[7..4] : int(4);"
            "variable vb = b[3..0] : int(4);",
            params="base : bit[8] port @ {0}")

    def test_distinct_pre_actions_allowed(self):
        check_body(
            "register idx = write base @ 1 : bit[8];"
            "private variable i = idx[0] : int(1);"
            "variable rest = idx[7..1] : int(7);"
            "register a = read base @ 0, pre {i = 0} : bit[8];"
            "register b = read base @ 0, pre {i = 1} : bit[8];"
            "variable va = a : int(8);"
            "variable vb = b : int(8);",
            params="base : bit[8] port @ {0..1}")

    def test_forced_bit_write_discrimination_allowed(self):
        check_body(
            "register a = write base @ 0, mask '1.......' : bit[8];"
            "register b = write base @ 0, mask '0.......' : bit[8];"
            "variable va = a[6..0] : int(7);"
            "variable vb = b[6..0] : int(7);",
            params="base : bit[8] port @ {0}")

    def test_read_one_write_other_allowed(self):
        check_body(
            "register a = read base @ 0 : bit[8];"
            "register b = write base @ 0 : bit[8];"
            "variable va = a : int(8);"
            "variable vb = b : int(8);",
            params="base : bit[8] port @ {0}")

    def test_mode_distinguished_registers_warn(self):
        messages = warnings_of(
            "register w1 = write base @ 0, mask '...1....' : bit[8];"
            "register w2 = write base @ 1 : bit[8];"
            "structure init = {"
            "  variable pad = w1[7..5] : int(3);"
            "  variable l = w1[3..0] : int(4);"
            "  variable vec = w2 : int(8);"
            "} serialized as { w1; w2; };"
            "register later = write base @ 1 : bit[8];"
            "variable v = later : int(8);",
            params="base : bit[8] port @ {0..1}")
        assert any("device mode" in m for m in messages)


class TestBehaviourRules:
    def test_trigger_without_neutral_sharing_register(self):
        messages = errors_of(
            "register cmd = base @ 0 : bit[8];"
            "variable t = cmd[0], write trigger : bool;"
            "variable other = cmd[7..1] : int(7);",
            params="base : bit[8] port @ {0}")
        assert any("no neutral value" in m for m in messages)

    def test_trigger_alone_on_register_is_fine(self):
        check_body(
            "register cmd = base @ 0 : bit[8];"
            "variable t = cmd, write trigger : int(8);",
            params="base : bit[8] port @ {0}")

    def test_trigger_with_except_neutral_ok(self):
        check_body(
            "register cmd = base @ 0 : bit[8];"
            "variable t = cmd[1..0], write trigger except NOP : "
            "{ NOP <=> '00', GO => '01', ST1 <= '01', ST2 <= '10',"
            "  ST3 <= '11' };"
            "variable other = cmd[7..2] : int(6);",
            params="base : bit[8] port @ {0}")

    def test_except_requires_enum_type(self):
        messages = errors_of(
            "register cmd = base @ 0 : bit[8];"
            "variable t = cmd[1..0], write trigger except NOP : int(2);"
            "variable other = cmd[7..2] : int(6);",
            params="base : bit[8] port @ {0}")
        assert any("requires an enumerated type" in m for m in messages)

    def test_volatile_sharing_across_structures_warns(self):
        messages = warnings_of(
            "register r = base @ 0 : bit[8];"
            "variable a = r[3..0], volatile : int(4);"
            "variable b = r[7..4] : int(4);",
            params="base : bit[8] port @ {0}")
        assert any("structure boundaries" in m for m in messages)

    def test_volatile_grouped_in_structure_ok(self):
        messages = warnings_of(
            "register r = base @ 0 : bit[8];"
            "structure s = {"
            "  variable a = r[3..0], volatile : int(4);"
            "  variable b = r[7..4], volatile : int(4);"
            "};",
            params="base : bit[8] port @ {0}")
        assert not messages


class TestResolvedModel:
    def test_busmouse_model_shape(self):
        from tests.conftest import shipped_spec
        model = shipped_spec("busmouse").model
        assert set(model.structures) == {"mouse_state"}
        assert model.variables["index"].private
        dx = model.variables["dx"]
        assert [c.register for c in dx.chunks] == ["x_high", "x_low"]
        assert dx.type == IntType(8, signed=True)

    def test_cs4236_constructor_substitution(self):
        from tests.conftest import shipped_spec
        model = shipped_spec("cs4236").model
        i23 = model.registers["I23"]
        assert i23.constructor == "I"
        assert i23.constructor_args == (23,)
        (pre,) = i23.pre_actions
        assert pre.target == "IA" and pre.value == 23
        x2 = model.registers["X2"]
        (pre,) = x2.pre_actions
        assert pre.target_kind == "structure"
        assert pre.value == {"XA": 2, "XRAE": True}

    def test_trigger_neutrals_resolved(self):
        from tests.conftest import shipped_spec
        model = shipped_spec("ne2000").model
        assert model.variables["st"].trigger_neutral_raw == 0b00
        assert model.variables["rd"].trigger_neutral_raw == 0b100
        xrae = shipped_spec("cs4236").model.variables["XRAE"]
        assert xrae.trigger_for_raw == 1
        assert xrae.trigger_neutral_raw == 0

    def test_ia_type_is_int_set(self):
        from tests.conftest import shipped_spec
        model = shipped_spec("cs4236").model
        assert isinstance(model.variables["IA"].type, IntSetType)

    def test_enum_type_resolution(self):
        from tests.conftest import shipped_spec
        model = shipped_spec("busmouse").model
        assert isinstance(model.variables["config"].type, EnumType)
