"""Telemetry tests: span parity, metrics, exporters, ring buffer, CLI.

The central claim mirrors the repository's cross-check philosophy: the
three execution strategies must not only perform identical I/O (proved
in ``tests/test_specialize.py``) but must *report* identically — for
every shipped spec, the span stream (device, stub, variable, kind,
attributed port I/O, fired actions, error) is byte-identical across
interpreted, specialized and generated stubs.  Timing and the strategy
label are the only permitted differences.
"""

import io
import json

import pytest

from repro import obs
from repro.bus import Bus, BusError, IoTraceEntry, iter_operations
from repro.devil.errors import DevilRuntimeError
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.validate import SchemaViolation, validate, validate_jsonl
from repro.obs.workloads import (
    MOUSE_BASE,
    STRATEGIES,
    WORKLOADS,
    bind_stubs,
    build_machine,
)
from repro.specs import SPEC_NAMES

SCHEMA_PATH = "docs/trace_schema.json"


def observed_run(name: str, strategy: str, debug: bool = False,
                 trace_limit: int | None = None):
    """Run one workload under telemetry; returns the collector."""
    bus, aux, bases = build_machine(name, trace_limit=trace_limit)
    with obs.observe(bus) as collector:
        stubs = bind_stubs(name, strategy, bus, bases, debug=debug)
        collector.register_ports(name, getattr(stubs, "_obs_ports", {}))
        WORKLOADS[name](stubs, aux)
    return collector


# ---------------------------------------------------------------------------
# Three-way span parity (the tentpole invariant)
# ---------------------------------------------------------------------------


class TestSpanParity:
    @pytest.mark.parametrize("name", SPEC_NAMES)
    @pytest.mark.parametrize("debug", [False, True],
                             ids=["release", "debug"])
    def test_span_streams_identical_across_strategies(self, name, debug):
        streams = {strategy: observed_run(name, strategy,
                                          debug).signatures()
                   for strategy in STRATEGIES}
        assert streams["interpret"], f"{name}: workload produced no spans"
        assert streams["specialize"] == streams["interpret"]
        assert streams["generated"] == streams["interpret"]

    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_every_bus_operation_attributed(self, name):
        """With telemetry on, no I/O escapes span attribution."""
        collector = observed_run(name, "interpret")
        spanned = sum(span.io_ops for span in collector.spans)
        assert spanned > 0
        assert sum(metric.value for metric
                   in collector.metrics.find("io.unattributed")) == 0

    def test_spans_carry_exact_port_io(self):
        collector = observed_run("busmouse", "interpret")
        by_stub = {}
        for span in collector.spans:
            by_stub.setdefault(span.stub, span)
        # A structure read touches all four nibble registers.
        state = by_stub["get_mouse_state"]
        assert state.kind == "get_struct"
        assert state.io_ops == 8  # 4 nibbles, each set_config + read
        # A pure decode of the snapshot performs no I/O at all.
        assert by_stub["get_dx"].io_ops == 0
        # Actions that fired are recorded with their kinds: each
        # nibble read is preceded by a write to the index variable.
        assert state.actions == [("pre", "index")] * 4

    def test_error_span_recorded_without_io(self):
        bus, aux, bases = build_machine("busmouse")
        with obs.observe(bus) as collector:
            stubs = bind_stubs("busmouse", "interpret", bus, bases,
                               debug=True)
            with pytest.raises(DevilRuntimeError):
                stubs.set_signature(256)
        (span,) = collector.spans
        assert span.error == "DevilRuntimeError"
        assert span.io == []

    def test_disabled_by_default_binds_clean_stubs(self):
        assert not obs.is_enabled()
        bus, aux, bases = build_machine("busmouse")
        stubs = bind_stubs("busmouse", "interpret", bus, bases)
        assert not hasattr(stubs.get_dx, "__wrapped__")
        collector = obs.Collector()
        bus.collector = collector
        WORKLOADS["busmouse"](stubs, aux)
        # Uninstrumented stubs never open spans; the bus still feeds
        # I/O events, which land in the unattributed counter.
        assert collector.spans == []
        assert sum(metric.value for metric
                   in collector.metrics.find("io.unattributed")) > 0

    def test_collector_detaches_on_observe_exit(self):
        bus, aux, bases = build_machine("busmouse")
        with obs.observe(bus):
            stubs = bind_stubs("busmouse", "specialize", bus, bases)
            assert obs.is_enabled()
        assert bus.collector is None
        assert not obs.is_enabled()
        # The instrumented instance survives detachment: calls keep
        # working and simply go unobserved.
        stubs.set_signature(0x11)
        assert stubs.get_signature() == 0x11


# ---------------------------------------------------------------------------
# Metrics registry and rollups
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_identity_by_name_and_labels(self):
        registry = MetricsRegistry()
        first = registry.counter("calls", device="ide")
        first.inc()
        first.inc(2)
        assert registry.counter("calls", device="ide") is first
        assert registry.counter("calls", device="ne2000") is not first
        assert registry.value("calls", device="ide") == 3

    def test_histogram_buckets_and_stats(self):
        histogram = Histogram("us", {}, buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["min"] == 0.5
        assert snapshot["max"] == 50.0
        assert snapshot["buckets"] == {"1.0": 1, "10.0": 1, "+Inf": 1}
        assert histogram.mean == pytest.approx(55.5 / 3)

    def test_sinks_receive_snapshot_on_flush(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(7)
        seen = []
        registry.add_sink(seen.append)
        registry.flush()
        (snapshot,) = seen
        assert any(entry["name"] == "n" and entry["value"] == 7
                   for entry in snapshot)

    def test_workload_rollups(self):
        collector = observed_run("ide", "specialize")
        metrics = collector.metrics
        assert metrics.value("dev.calls", device="ide") == \
            len(collector.spans)
        # The 256-word data-block read dominates the word rollup.
        assert metrics.value("var.io_words", device="ide",
                             variable="ide_data") >= 256
        # Per-register attribution via the registered port map.
        assert metrics.value("reg.reads", device="ide",
                             register="data_reg") >= 1
        durations = [m for m in metrics.find("var.us")
                     if m.labels.get("variable") == "ide_data"]
        assert durations and durations[0].snapshot()["count"] >= 1


# ---------------------------------------------------------------------------
# Bus ring buffer and block-entry reconstruction (satellites 1 + 2)
# ---------------------------------------------------------------------------


class TestBusTraceRing:
    def test_unbounded_by_default(self):
        bus, aux, bases = build_machine("ide")
        stubs = bind_stubs("ide", "interpret", bus, bases)
        WORKLOADS["ide"](stubs, aux)
        assert bus.trace_dropped == 0
        assert len(bus.trace) > 256

    def test_ring_keeps_newest_and_counts_drops(self):
        bus, aux, bases = build_machine("ide", trace_limit=16)
        stubs = bind_stubs("ide", "interpret", bus, bases)
        WORKLOADS["ide"](stubs, aux)
        assert len(bus.trace) == 16
        assert bus.trace_dropped > 0
        unbounded = build_machine("ide")
        full_bus, full_aux, full_bases = unbounded
        full_stubs = bind_stubs("ide", "interpret", full_bus, full_bases)
        WORKLOADS["ide"](full_stubs, full_aux)
        assert list(bus.trace) == list(full_bus.trace)[-16:]
        assert bus.trace_dropped == len(full_bus.trace) - 16

    def test_drop_count_surfaces_in_metrics(self):
        collector = observed_run("ide", "interpret", trace_limit=16)
        assert collector.metrics.value("bus.trace_dropped") > 0

    def test_negative_limit_rejected(self):
        with pytest.raises(BusError):
            Bus(trace_limit=-1)

    def test_block_entries_reconstructible(self):
        bus, aux, bases = build_machine("ne2000")
        stubs = bind_stubs("ne2000", "interpret", bus, bases)
        WORKLOADS["ne2000"](stubs, aux)
        operations = list(iter_operations(bus.trace))
        # Grouping inverts the per-word flattening exactly.
        assert [entry for group in operations for entry in group] == \
            list(bus.trace)
        blocks = [group for group in operations
                  if group[0].op in ("rb", "wb")]
        assert len(blocks) == 2  # one remote write, one remote read
        for group in blocks:
            assert len(group) == group[0].count == 4
            assert all(entry.count == 4 for entry in group)
        singles = [group for group in operations
                   if group[0].op in ("r", "w")]
        assert all(len(group) == 1 and group[0].count == 1
                   for group in singles)


# ---------------------------------------------------------------------------
# Exporters (satellite 3 riders) and the schema contract
# ---------------------------------------------------------------------------


class TestExporters:
    def test_jsonl_conforms_to_checked_in_schema(self):
        collector = observed_run("permedia2", "generated")
        buffer = io.StringIO()
        written = obs.to_jsonl(collector.spans, buffer)
        assert written == len(collector.spans) > 0
        with open(SCHEMA_PATH, encoding="utf-8") as handle:
            schema = json.load(handle)
        assert validate_jsonl(
            schema, buffer.getvalue().splitlines()) == written

    def test_schema_validator_rejects_bad_records(self):
        with open(SCHEMA_PATH, encoding="utf-8") as handle:
            schema = json.load(handle)
        collector = observed_run("busmouse", "interpret")
        record = collector.spans[0].to_dict()
        validate(record, schema)
        for mutation in (
                {"strategy": "jit"},
                {"seq": -1},
                {"io": [{"op": "x", "port": 0, "value": 0,
                         "width": 8, "count": 1}]},
                {"bogus": True}):
            broken = {**record, **mutation}
            with pytest.raises(SchemaViolation):
                validate(broken, schema)

    def test_chrome_trace_structure(self):
        collector = observed_run("ide", "specialize")
        trace = obs.to_chrome_trace(collector.spans)
        events = [event for event in trace["traceEvents"]
                  if event["ph"] == "X"]
        assert len(events) == len(collector.spans)
        assert all(event["ts"] >= 0 and event["dur"] > 0
                   for event in events)
        metas = [event for event in trace["traceEvents"]
                 if event["ph"] == "M"]
        assert {meta["args"]["name"] for meta in metas} == {"ide"}
        # Round-trips through json (Perfetto loads files, not objects).
        json.loads(json.dumps(trace))

    def test_hot_report_ranks_by_io(self):
        collector = observed_run("ide", "interpret")
        report = obs.hot_report(collector.spans, collector.metrics)
        lines = report.splitlines()
        header = next(index for index, line in enumerate(lines)
                      if line.startswith("device"))
        # The block-transfer variable leads the table.
        assert "ide_data" in lines[header + 1]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestTraceCli:
    def _run(self, *argv):
        from repro.devil.cli import main
        return main(list(argv))

    def test_jsonl_output_validates(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert self._run("trace", "busmouse", "--strategy=all",
                         "--format=jsonl", "-o", str(out)) == 0
        with open(SCHEMA_PATH, encoding="utf-8") as handle:
            schema = json.load(handle)
        with open(out, encoding="utf-8") as handle:
            count = validate_jsonl(schema, handle)
        assert count == 30  # 10 spans per strategy

    def test_chrome_output_is_loadable_json(self, tmp_path):
        out = tmp_path / "trace.json"
        assert self._run("trace", "busmouse", "--format=chrome",
                         "-o", str(out)) == 0
        trace = json.loads(out.read_text())
        assert any(event.get("ph") == "X"
                   for event in trace["traceEvents"])

    def test_variable_filter_and_summary(self, capsys):
        assert self._run("trace", "busmouse", "--format=summary",
                         "--variable=dx") == 0
        captured = capsys.readouterr().out
        assert "2 spans" in captured

    def test_report_format(self, capsys):
        assert self._run("trace", "ide", "--format=report",
                         "--trace-limit=32") == 0
        captured = capsys.readouterr().out
        assert "hot device variables" in captured
        assert "dropped (ring buffer)" in captured

    def test_unknown_spec_rejected(self, capsys):
        assert self._run("trace", "nope") == 1
        assert "unknown shipped spec" in capsys.readouterr().err

    def test_cli_leaves_telemetry_disabled(self):
        self._run("trace", "busmouse", "--format=summary")
        assert not obs.is_enabled()
