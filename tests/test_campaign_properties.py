"""Property-based tests for the mutation campaign engine.

Each property case is generated from a seeded :class:`random.Random`:
a random spec subset drawn from the cheap end of the shipped pool, a
random uniform mutant budget, a random per-target site budget, a
random fleet backend and random worker counts.  Whatever the draw, the
campaign invariants must hold:

* **Verdict equality** — the fleet-scheduled report is byte-identical
  to the serial reference over the same scope (placement and
  interleaving must not be able to change a verdict).
* **Placement determinism** — the unit→worker assignment matches a
  pure reimplementation of the submit-time round-robin, computed
  without running anything.
* **Cache-hit idempotence** — an immediate re-run against the warm
  cache evaluates nothing, serves every unit from disk, and renders
  the same bytes.

On failure the harness *shrinks* the case — dropping specs, lowering
the site budget and worker count while the failure reproduces — and
reports the seed plus the minimal reproduction, mirroring
``test_fleet_properties.py``.
"""

from __future__ import annotations

import random
import tempfile

import pytest

from repro.mutation import (
    CampaignConfig,
    MutantCaps,
    VerdictCache,
    generate_units,
    run_campaign,
)

pytestmark = pytest.mark.concurrency

#: Specs cheap enough to evaluate in bulk (the big devices — ne2000,
#: dma8237, permedia2 — cost seconds per budget point and add no
#: scheduling coverage).
SPEC_POOL = ("busmouse", "pic8259", "cs4236", "piix4")

FAST_SEEDS = range(4)
SLOW_SEEDS = range(4, 12)


# ---------------------------------------------------------------------------
# Case generation
# ---------------------------------------------------------------------------


def generate_case(seed: int) -> dict:
    rng = random.Random(seed)
    specs = tuple(sorted(rng.sample(SPEC_POOL, rng.randint(1, 3))))
    backend = rng.choice(("thread", "process"))
    return {
        "seed": seed,
        "specs": specs,
        "budget": rng.randint(1, 3),
        "max_sites": rng.randint(3, 8),
        "backend": backend,
        "workers": rng.randint(1, 3) if backend == "thread"
        else rng.randint(1, 2),
    }


def _config(case: dict, backend: str, workers: int = 1) -> CampaignConfig:
    return CampaignConfig(specs=case["specs"],
                          caps=MutantCaps.quick(case["budget"]),
                          max_sites=case["max_sites"],
                          backend=backend, workers=workers)


# ---------------------------------------------------------------------------
# The pure placement model (independent of the engine code)
# ---------------------------------------------------------------------------


def expected_placement(case: dict) -> dict[str, int]:
    """``worker label -> unit count`` from first principles: pending
    units are submitted in generation order against one compute device
    per worker under round-robin, so unit *i* lands on worker
    ``i % workers``."""
    from repro.engine.compute import COMPUTE_SPEC

    units = generate_units(_config(case, "serial"))
    workers = case["workers"]
    counts = {f"{COMPUTE_SPEC}{index}": 0 for index in range(workers)}
    for index in range(len(units)):
        counts[f"{COMPUTE_SPEC}{index % workers}"] += 1
    return counts


# ---------------------------------------------------------------------------
# Checking and shrinking
# ---------------------------------------------------------------------------


def check_case(case: dict) -> str | None:
    """Run the case serially and on its fleet backend; return a failure
    description or ``None`` when every invariant holds."""
    with tempfile.TemporaryDirectory() as serial_root, \
            tempfile.TemporaryDirectory() as fleet_root:
        serial = run_campaign(_config(case, "serial"),
                              cache=VerdictCache(serial_root))
        fleet = run_campaign(_config(case, case["backend"],
                                     case["workers"]),
                             cache=VerdictCache(fleet_root))
        if fleet.report.to_json() != serial.report.to_json():
            return (f"{case['backend']} report diverged from serial "
                    f"over {case['specs']}")
        if fleet.salvaged:
            return (f"{case['backend']} lost {fleet.salvaged} verdicts "
                    f"(parent had to salvage)")
        expected = expected_placement(case)
        if fleet.placement != expected:
            return (f"{case['backend']} placement {fleet.placement} "
                    f"!= pure model {expected}")

        # Immediate re-run: everything from the warm cache, same bytes.
        again = run_campaign(_config(case, case["backend"],
                                     case["workers"]),
                             cache=VerdictCache(fleet_root))
        if again.evaluated != 0 or again.salvaged != 0:
            return (f"warm re-run evaluated {again.evaluated} and "
                    f"salvaged {again.salvaged} units (want 0)")
        if again.cache_hits != again.units:
            return (f"warm re-run served {again.cache_hits} of "
                    f"{again.units} units from cache")
        if again.report.to_json() != serial.report.to_json():
            return "warm re-run rendered different bytes"
    return None


def shrink_case(case: dict, failure: str) -> tuple[dict, str]:
    """Greedily minimise a failing case while it still fails.

    Passes: drop one spec at a time (restarting after each success),
    then lower ``max_sites``, the budget and the worker count toward 1.
    Deterministic — the shrunk case is reproducible from the report.
    """
    current, current_failure = dict(case), failure
    progress = True
    while progress:
        progress = False
        for index in range(len(current["specs"])):
            if len(current["specs"]) == 1:
                break
            candidate = dict(current)
            candidate["specs"] = (current["specs"][:index] +
                                  current["specs"][index + 1:])
            result = check_case(candidate)
            if result is not None:
                current, current_failure = candidate, result
                progress = True
                break
    for key, floor in (("max_sites", 1), ("budget", 1), ("workers", 1)):
        while current[key] > floor:
            candidate = dict(current)
            candidate[key] = current[key] - 1
            result = check_case(candidate)
            if result is None:
                break
            current, current_failure = candidate, result
    return current, current_failure


def describe_case(case: dict) -> str:
    return (f"seed={case['seed']} specs={case['specs']} "
            f"budget={case['budget']} max_sites={case['max_sites']} "
            f"backend={case['backend']} workers={case['workers']}")


def assert_case_holds(seed: int) -> None:
    case = generate_case(seed)
    failure = check_case(case)
    if failure is None:
        return
    minimal, minimal_failure = shrink_case(case, failure)
    pytest.fail(
        f"campaign property violated for seed {seed}: {failure}\n"
        f"minimal reproduction after shrinking: {minimal_failure}\n"
        f"  {describe_case(minimal)}")


# ---------------------------------------------------------------------------
# The properties
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_random_scopes_preserve_campaign_invariants(seed):
    assert_case_holds(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_random_scopes_extended_sweep(seed):
    assert_case_holds(seed)


def test_generation_is_seed_deterministic():
    """The harness itself must be reproducible: same seed, same case."""
    assert generate_case(3) == generate_case(3)
    assert generate_case(3) != generate_case(4)


def test_shrinker_minimises_a_synthetic_failure():
    """Feed the shrinker a case that 'fails' whenever pic8259 is in
    scope and verify it reduces to that one spec with every knob at
    its floor."""
    case = {"seed": 0, "specs": ("busmouse", "cs4236", "pic8259"),
            "budget": 3, "max_sites": 7, "backend": "thread",
            "workers": 3}

    def fake_check(candidate):
        return "synthetic failure" if "pic8259" in candidate["specs"] \
            else None

    original_check = globals()["check_case"]
    globals()["check_case"] = fake_check
    try:
        minimal, failure = shrink_case(case, "synthetic failure")
    finally:
        globals()["check_case"] = original_check
    assert failure == "synthetic failure"
    assert minimal["specs"] == ("pic8259",)
    assert minimal["max_sites"] == 1
    assert minimal["budget"] == 1
    assert minimal["workers"] == 1
