"""The mutation campaign engine: cache, registry, projection, CLI.

Covers the campaign's correctness story piece by piece: the verdict
cache round-trips and survives corruption (re-evaluates instead of
crashing or trusting a bad record), the target registry memoizes
construction (``run_table1`` no longer re-parses specs per call), the
campaign's Table 1 projection is byte-equal to the serial
:func:`repro.mutation.run_table1`, and the ``devil campaign`` CLI
round-trips.  The cross-backend properties live in
``test_campaign_properties.py``.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.mutation import (
    CampaignConfig,
    CampaignReport,
    MutantCaps,
    VerdictCache,
    analyze_target,
    available_styles,
    generate_units,
    get_target,
    run_campaign,
    run_table1,
    target_fingerprint,
    target_ids,
    unit_key,
)
from repro.mutation import registry
from repro.specs import SPEC_NAMES

QUICK = MutantCaps.quick(2)

#: The cheapest real scope: one target, ~28 units, well under 100 ms.
TINY = dict(specs=("busmouse",), styles=("cdevil",), caps=QUICK)


# ---------------------------------------------------------------------------
# Verdict cache
# ---------------------------------------------------------------------------


def _record(key: str) -> dict:
    return {"key": key, "target_id": "busmouse/cdevil",
            "site": {"kind": "number", "text": "3", "offset": 10,
                     "line": 2},
            "mutants": 4, "detected": 3, "undetected": 1,
            "survivors": ["'3' -> '8' (line 2)"]}


def test_vcache_round_trip(tmp_path):
    cache = VerdictCache(tmp_path)
    key = "ab" + "0" * 62
    assert cache.get(key) is None
    cache.put(key, _record(key))
    record = cache.get(key)
    assert record is not None
    assert record["mutants"] == 4
    assert record["survivors"] == ["'3' -> '8' (line 2)"]
    assert cache.stats() == {"hits": 1, "misses": 1, "corrupt": 0,
                             "writes": 1}
    # Entries fan out under a two-character prefix directory.
    assert cache.path_for(key).parent.name == "ab"


@pytest.mark.parametrize("poison", [
    "",                                        # truncated to nothing
    "{\"key\": \"",                            # torn mid-write
    "not json at all\n",
    "[1, 2, 3]\n",                             # wrong shape
    json.dumps({"schema": 99}),                # schema mismatch
])
def test_vcache_rejects_garbled_entries(tmp_path, poison):
    cache = VerdictCache(tmp_path)
    key = "cd" + "1" * 62
    cache.put(key, _record(key))
    cache.path_for(key).write_text(poison)
    assert cache.get(key) is None
    assert cache.corrupt == 1


def test_vcache_rejects_key_and_arithmetic_mismatches(tmp_path):
    cache = VerdictCache(tmp_path)
    key = "ef" + "2" * 62
    other = "ef" + "3" * 62
    # A record filed under the wrong key must not be trusted.
    cache.put(key, _record(other) | {"key": other})
    cache.path_for(key).write_text(
        json.dumps(_record(other)))
    assert cache.get(key) is None
    # detected + undetected must equal mutants.
    bad = _record(key)
    bad["detected"] = 99
    cache.put(key, bad)
    assert cache.get(key) is None
    assert cache.corrupt >= 2


def test_campaign_recovers_from_cache_corruption(tmp_path):
    """Garbling cached verdicts makes the campaign re-evaluate the
    affected units — same report, no crash, corruption counted."""
    cache = VerdictCache(tmp_path)
    config = CampaignConfig(**TINY)
    first = run_campaign(config, cache=cache)
    units = generate_units(config)
    assert len(units) >= 3
    # Truncate one entry mid-record and garble another outright.
    cache.path_for(units[0].key).write_text(
        cache.path_for(units[0].key).read_text()[:17])
    cache.path_for(units[1].key).write_text("\x00\xff garbage")
    again = run_campaign(config, cache=VerdictCache(tmp_path))
    assert again.corrupt_recovered == 2
    assert again.evaluated == 2
    assert again.cache_hits == again.units - 2
    assert again.report.to_json() == first.report.to_json()


def test_campaign_cache_hit_idempotence(tmp_path):
    cache = VerdictCache(tmp_path)
    config = CampaignConfig(**TINY)
    first = run_campaign(config, cache=cache)
    assert first.evaluated == first.units > 0
    again = run_campaign(config, cache=cache)
    assert again.evaluated == 0
    assert again.cache_hits == again.units == first.units
    assert again.report.to_json() == first.report.to_json()


def test_private_cache_runs_and_leaves_nothing(tmp_path, monkeypatch):
    """cache=None runs in a discarded private root, not the default
    cache directory."""
    monkeypatch.setenv("DEVIL_CAMPAIGN_CACHE", str(tmp_path / "default"))
    result = run_campaign(CampaignConfig(**TINY))
    assert result.units > 0 and result.evaluated == result.units
    assert not (tmp_path / "default").exists()


# ---------------------------------------------------------------------------
# Unit keys: structural staleness
# ---------------------------------------------------------------------------


def test_unit_keys_track_budget_fingerprint_and_site():
    target_id = "busmouse/cdevil"
    fingerprint = target_fingerprint(target_id)
    site = get_target(target_id).sites[0]
    base = unit_key(target_id, fingerprint, site, QUICK)
    assert base != unit_key(target_id, fingerprint, site,
                            MutantCaps.quick(3))
    assert base != unit_key(target_id, "0" * 64, site, QUICK)
    other_site = get_target(target_id).sites[1]
    assert base != unit_key(target_id, fingerprint, other_site, QUICK)
    # Same inputs, same key — the cache is shareable across runs.
    assert base == unit_key(target_id, fingerprint, site, QUICK)


def test_cdevil_fingerprint_covers_spec_sources():
    """A CDevil target's verdicts depend on the generated stub surface,
    so its fingerprint must differ from a pure hash of its own text —
    the C target of the same device hashes only its source."""
    assert target_fingerprint("busmouse/cdevil") != \
        target_fingerprint("busmouse/c")


# ---------------------------------------------------------------------------
# Registry: hoisted, memoized target construction (the run_table1 fix)
# ---------------------------------------------------------------------------


def test_registry_memoizes_target_construction():
    get_target("busmouse/cdevil")
    before = registry.BUILD_COUNT
    get_target("busmouse/cdevil")
    get_target("busmouse/cdevil")
    assert registry.BUILD_COUNT == before


def test_run_table1_does_not_rebuild_targets():
    """Regression: ``run_table1`` used to re-parse every spec and
    corpus program per call; now a repeat run performs zero target
    constructions."""
    caps = MutantCaps.quick(1)
    first = run_table1(caps, devices=("busmouse",))
    before = registry.BUILD_COUNT
    second = run_table1(caps, devices=("busmouse",))
    assert registry.BUILD_COUNT == before
    assert [r.rows() for r in first] == [r.rows() for r in second]


def test_registry_scope_enumeration():
    ids = target_ids()
    # All 8 specs speak Devil; the paper's three corpus devices add
    # C and CDevil rows.
    assert len(ids) == len(SPEC_NAMES) + 2 * 3
    assert ids == target_ids(tuple(reversed(SPEC_NAMES)))
    assert available_styles("busmouse") == ("c", "devil", "cdevil")
    assert available_styles("pic8259") == ("devil",)
    with pytest.raises(ValueError, match="unknown specs"):
        target_ids(("nosuch",))
    with pytest.raises(ValueError, match="unknown styles"):
        target_ids(("busmouse",), ("rust",))


# ---------------------------------------------------------------------------
# The Table 1 projection
# ---------------------------------------------------------------------------


def test_campaign_projects_table1_byte_exactly():
    result = run_campaign(CampaignConfig(specs=("busmouse",),
                                         caps=QUICK))
    reference = [row for device_rows
                 in run_table1(QUICK, devices=("busmouse",))
                 for row in device_rows.rows()]
    assert json.dumps(result.report.table1_rows(), sort_keys=True) == \
        json.dumps(reference, sort_keys=True)


def test_site_budgeted_campaign_withholds_projection():
    """A ``max_sites`` scope cannot render exact paper rows — the
    projection is withheld, not approximated."""
    result = run_campaign(CampaignConfig(specs=("busmouse",),
                                         caps=QUICK, max_sites=3))
    assert result.report.table1_rows() == []
    assert result.units == 9  # 3 sites x 3 styles
    assert result.report.by_device()["busmouse"]["mutants"] > 0


def test_report_breakdowns_are_consistent():
    config = CampaignConfig(specs=("busmouse", "pic8259"), caps=QUICK,
                            max_sites=4)
    report = run_campaign(config).report
    total = sum(b["mutants"] for b in report.by_device().values())
    assert total == sum(b["mutants"]
                       for b in report.by_language().values())
    assert total == sum(b["mutants"] for b in report.by_rule().values())
    assert set(report.by_device()) == {"busmouse", "pic8259"}
    assert "Devil" in report.by_language()
    payload = json.loads(report.to_json())
    assert set(payload) == {"scope", "targets", "by_device",
                            "by_language", "by_rule", "table1"}


def test_report_outcomes_match_serial_analysis():
    """The reconstructed per-target outcome equals a direct
    ``analyze_target`` of the same target and budget."""
    result = run_campaign(CampaignConfig(**TINY))
    (outcome,) = result.report.outcomes().values()
    direct = analyze_target(get_target("busmouse/cdevil"), QUICK)
    assert outcome.sites == direct.sites
    assert outcome.total_mutants == direct.total_mutants
    assert outcome.total_undetected == direct.total_undetected
    assert [o.site.key() for o in outcome.site_outcomes] == \
        [o.site.key() for o in direct.site_outcomes]


# ---------------------------------------------------------------------------
# Config validation and unit generation
# ---------------------------------------------------------------------------


def test_campaign_config_validation():
    with pytest.raises(ValueError, match="unknown campaign backend"):
        CampaignConfig(backend="mpi")
    with pytest.raises(ValueError, match="at least one worker"):
        CampaignConfig(workers=0)
    with pytest.raises(ValueError, match="max_sites"):
        CampaignConfig(max_sites=0)
    with pytest.raises(ValueError, match="unknown specs"):
        generate_units(CampaignConfig(specs=("nosuch",)))


def test_unit_generation_is_deterministic():
    config = CampaignConfig(**TINY)
    assert generate_units(config) == generate_units(config)


def test_stale_unit_tokens_are_rejected(tmp_path):
    from repro.mutation.campaign import evaluate_unit

    unit = generate_units(CampaignConfig(**TINY))[0]
    token = unit.token() | {"site_index": 10_000}
    with pytest.raises(ValueError, match="stale campaign"):
        evaluate_unit(token, str(tmp_path))
    token = unit.token() | {"site_key": "number:999@0"}
    with pytest.raises(ValueError, match="stale campaign"):
        evaluate_unit(token, str(tmp_path))


# ---------------------------------------------------------------------------
# Quick vs full budgets (the DEVIL_MUTATION_QUICK path)
# ---------------------------------------------------------------------------


def test_mutant_caps_quick_budgets():
    """``quick`` caps every kind uniformly; the default budget caps
    only identifiers (numbers/operators/bit patterns enumerate in
    full, preserving the paper's weighting)."""
    quick = MutantCaps.quick()
    assert (quick.ident, quick.number, quick.operator,
            quick.bitpattern) == (8, 8, 8, 8)
    assert MutantCaps.quick(3) == MutantCaps(3, 3, 3, 3)
    full = MutantCaps()
    assert full.ident == 12
    for kind in ("number", "operator", "bitpattern"):
        assert full.for_kind(kind) is None
    assert quick.for_kind("ident") == 8


def _load_bench_module():
    root = Path(__file__).resolve().parent.parent / "benchmarks"
    sys.path.insert(0, str(root))
    try:
        spec = importlib.util.spec_from_file_location(
            "bench_table1_mutation", root / "bench_table1_mutation.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
    finally:
        sys.path.remove(str(root))
    return module


def test_bench_quick_env_switches_budget(monkeypatch):
    bench = _load_bench_module()
    monkeypatch.delenv("DEVIL_MUTATION_QUICK", raising=False)
    assert bench._caps() == MutantCaps()
    monkeypatch.setenv("DEVIL_MUTATION_QUICK", "1")
    assert bench._caps() == MutantCaps.quick(6)


def test_quick_and_full_budgets_agree_on_sites():
    """The quick budget sees the same site universe as the full one:
    site extraction is budget-independent, and every site the quick
    pass populates is a full-pass site with at most as many mutants.
    A site may drop out of the quick pass entirely (its whole sampled
    population filtered as invalid), but never the reverse."""
    target = get_target("busmouse/cdevil")
    quick = analyze_target(target, MutantCaps.quick(2))
    full = analyze_target(target, MutantCaps())
    full_by_key = {o.site.key(): o for o in full.site_outcomes}
    assert quick.site_outcomes  # non-degenerate
    for outcome in quick.site_outcomes:
        assert outcome.site.key() in full_by_key
        assert outcome.mutants <= full_by_key[outcome.site.key()].mutants
    # Both passes walk the identical extracted site list, in order.
    site_order = [site.key() for site in target.sites]
    assert [o.site.key() for o in full.site_outcomes] == \
        [key for key in site_order if key in full_by_key]
    quick_keys = {o.site.key() for o in quick.site_outcomes}
    assert [o.site.key() for o in quick.site_outcomes] == \
        [key for key in site_order if key in quick_keys]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_campaign_json_report(tmp_path, capsys):
    from repro.devil.cli import main

    cache_dir = tmp_path / "cache"
    assert main(["campaign", "--specs", "busmouse", "--styles",
                 "cdevil", "--budget", "2", "--cache-dir",
                 str(cache_dir), "--report", "json", "--quiet"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scope"]["specs"] == ["busmouse"]
    assert payload["targets"]["busmouse/cdevil"]["mutants"] > 0
    assert payload["table1"] == []  # needs all three styles

    # Resume against the warm cache, render the human table to a file.
    out = tmp_path / "report.txt"
    assert main(["campaign", "--specs", "busmouse", "--styles",
                 "cdevil", "--budget", "2", "--cache-dir",
                 str(cache_dir), "-o", str(out)]) == 0
    stderr = capsys.readouterr().err
    assert "0 to evaluate" in stderr
    assert "busmouse/cdevil" in out.read_text()


def test_cli_campaign_rejects_bad_scope(capsys):
    from repro.devil.cli import main

    assert main(["campaign", "--specs", "nosuch", "--no-cache"]) == 1
    assert "unknown specs" in capsys.readouterr().err


def test_cli_campaign_projection_matches_library(tmp_path, capsys):
    from repro.devil.cli import main

    assert main(["campaign", "--specs", "busmouse", "--budget", "2",
                 "--no-cache", "--report", "rows", "--quiet"]) == 0
    rows = json.loads(capsys.readouterr().out)
    reference = [row for device_rows
                 in run_table1(QUICK, devices=("busmouse",))
                 for row in device_rows.rows()]
    assert json.dumps(rows, sort_keys=True) == \
        json.dumps(reference, sort_keys=True)
