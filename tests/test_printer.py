"""Tests for the pretty-printer: parse -> print -> parse round-trips."""

import pytest

from repro.devil import ast
from repro.devil.parser import parse
from repro.devil.printer import print_device
from repro.specs import SPEC_NAMES, load_source


def normalize(device: ast.DeviceDecl):
    """Structural fingerprint of an AST, ignoring source locations."""
    def walk(node):
        if isinstance(node, list):
            return tuple(walk(item) for item in node)
        if isinstance(node, tuple):
            return tuple(walk(item) for item in node)
        if hasattr(node, "__dataclass_fields__"):
            fields = []
            for name in node.__dataclass_fields__:
                if name == "location":
                    continue
                fields.append((name, walk(getattr(node, name))))
            return (type(node).__name__, tuple(fields))
        return node
    return walk(device)


class TestRoundTrip:
    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_shipped_specs_roundtrip(self, name):
        source = load_source(name)
        first = parse(source)
        printed = print_device(first)
        second = parse(printed)
        assert normalize(first) == normalize(second)

    def test_printed_spec_still_checks(self):
        from repro.devil.checker import check
        printed = print_device(parse(load_source("cs4236")))
        model = check(parse(printed))
        assert "XRAE" in model.variables

    def test_fixed_point(self):
        """Printing is idempotent: print(parse(print(x))) == print(x)."""
        for name in SPEC_NAMES:
            printed = print_device(parse(load_source(name)))
            assert print_device(parse(printed)) == printed


class TestRendering:
    def test_figure_one_constructs_visible(self):
        printed = print_device(parse(load_source("busmouse")))
        assert "mask '1001000.'" in printed
        assert "pre {index = 0}" in printed
        assert "x_high[3..0] # x_low[3..0]" in printed
        assert "write trigger" in printed

    def test_conditional_serialization_rendered(self):
        printed = print_device(parse(load_source("pic8259")))
        assert "if (sngl == CASCADED) icw3;" in printed
        assert "if (ic4 == true) icw4;" in printed

    def test_constructor_rendered(self):
        printed = print_device(parse(load_source("cs4236")))
        assert "register I(i : int{0..31})" in printed
        assert "I(23)" in printed
        assert "pre {XS = {XA => j; XRAE => true}}" in printed
