"""Unit tests for the Devil parser."""

import pytest

from repro.devil import ast
from repro.devil.errors import DevilParseError
from repro.devil.parser import parse
from repro.devil.types import EnumDirection


def parse_body(body: str) -> ast.DeviceDecl:
    """Wrap declarations in a minimal device."""
    return parse("device d (base : bit[8] port @ {0..7}) {\n"
                 + body + "\n}")


class TestDeviceHeader:
    def test_name_and_params(self):
        device = parse("device logitech_busmouse "
                       "(base : bit[8] port @ {0..3}) { }")
        assert device.name == "logitech_busmouse"
        (param,) = device.params
        assert param.name == "base"
        assert param.data_width == 8
        assert param.offset_values() == frozenset({0, 1, 2, 3})

    def test_multiple_params(self):
        device = parse("device ide (cmd : bit[8] port @ {1..7}, "
                       "data : bit[16] port @ {0}) { }")
        assert [p.name for p in device.params] == ["cmd", "data"]
        assert device.params[1].data_width == 16

    def test_port_range_with_comma_list(self):
        device = parse("device d (io : bit[8] port @ {0,2,4..6}) { }")
        assert device.params[0].offset_values() == frozenset({0, 2, 4, 5, 6})

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DevilParseError):
            parse("device d (p : bit[8] port @ {0}) { } extra")

    def test_reversed_range_rejected(self):
        with pytest.raises(DevilParseError):
            parse("device d (p : bit[8] port @ {3..0}) { }")


class TestRegisters:
    def test_plain_register(self):
        device = parse_body("register r = base @ 1 : bit[8];"
                            "variable v = r : int(8);")
        register = device.registers()[0]
        assert register.read_port.offset == 1
        assert register.write_port is register.read_port
        assert register.width == 8

    def test_write_only_register(self):
        device = parse_body("register r = write base @ 3 : bit[8];"
                            "variable v = r : int(8);")
        register = device.registers()[0]
        assert register.read_port is None
        assert register.write_port.offset == 3

    def test_read_and_write_ports(self):
        device = parse_body(
            "register r = read base @ 0, write base @ 1 : bit[8];"
            "variable v = r : int(8);")
        register = device.registers()[0]
        assert register.read_port.offset == 0
        assert register.write_port.offset == 1

    def test_mask_attribute(self):
        device = parse_body(
            "register r = write base @ 3, mask '1001000.' : bit[8];"
            "variable v = r[0] : bool;")
        assert device.registers()[0].mask_pattern == "1001000."

    def test_pre_action(self):
        device = parse_body(
            "register idx = write base @ 2 : bit[8];"
            "private variable i = idx[1..0] : int(2);"
            "register r = read base @ 0, pre {i = 1} : bit[8];"
            "variable v = r : int(8);")
        register = device.registers()[1]
        (action,) = register.pre_actions
        assert action.target == "i"
        assert isinstance(action.value, ast.IntValue)
        assert action.value.value == 1

    def test_register_constructor_and_instance(self):
        device = parse_body(
            "register idx = write base @ 0 : bit[8];"
            "private variable ia = idx[4..0] : int{0..31};"
            "register I(i : int{0..31}) = base @ 1, pre {ia = i} : bit[8];"
            "register I23 = I(23), mask '......0.';"
            "variable v = I23[0] : bool;")
        constructor = device.registers()[1]
        assert constructor.is_constructor
        assert constructor.params[0].name == "i"
        instance = device.registers()[2]
        assert instance.base.constructor == "I"
        assert instance.base.arguments == [23]
        assert instance.mask_pattern == "......0."

    def test_missing_semicolon(self):
        with pytest.raises(DevilParseError):
            parse_body("register r = base @ 1 : bit[8]")

    def test_duplicate_mask_rejected(self):
        with pytest.raises(DevilParseError):
            parse_body("register r = base @ 1, mask '........', "
                       "mask '........' : bit[8];")


class TestVariables:
    def test_whole_register_variable(self):
        device = parse_body("register r = base @ 0 : bit[8];"
                            "variable v = r : int(8);")
        variable = device.variables()[0]
        assert variable.chunks[0].register == "r"
        assert variable.chunks[0].ranges is None

    def test_bit_range_and_concatenation(self):
        device = parse_body(
            "register hi = base @ 0 : bit[8];"
            "register lo = base @ 1 : bit[8];"
            "variable v = hi[3..0] # lo[3..0], volatile "
            ": signed int(8);"
            "variable rest_hi = hi[7..4] : int(4);"
            "variable rest_lo = lo[7..4] : int(4);")
        variable = device.variables()[0]
        assert len(variable.chunks) == 2
        assert variable.chunks[0].register == "hi"
        assert variable.chunks[0].ranges[0].msb == 3
        assert variable.behaviors.volatile
        assert variable.type_expr.signed

    def test_comma_separated_bit_ranges(self):
        device = parse_body("register r = base @ 0 : bit[8];"
                            "variable xa = r[2,7..4] : int(5);"
                            "variable rest = r[3,1..0] : int(3);")
        ranges = device.variables()[0].chunks[0].ranges
        assert [(r.msb, r.lsb) for r in ranges] == [(2, 2), (7, 4)]

    def test_private_variable(self):
        device = parse_body("register r = write base @ 0 : bit[8];"
                            "private variable v = r : int(8);")
        assert device.variables()[0].private

    def test_memory_variable(self):
        device = parse_body("register r = base @ 0 : bit[8];"
                            "variable v = r : int(8);"
                            "private variable xm : bool;")
        memory = device.variables()[1]
        assert memory.chunks is None

    def test_trigger_with_except(self):
        device = parse_body(
            "register cmd = base @ 0 : bit[8];"
            "variable st = cmd[1..0], write trigger except NEUTRAL "
            ": { NEUTRAL <=> '00', GO <=> '01', X2 <= '10', X3 <= '11' };"
            "variable rest = cmd[7..2] : int(6);")
        trigger = device.variables()[0].behaviors.trigger
        assert trigger.direction is ast.AccessDirection.WRITE
        assert trigger.except_symbol == "NEUTRAL"

    def test_trigger_for_value(self):
        device = parse_body(
            "register r = base @ 0 : bit[8];"
            "variable v = r[0], write trigger for true : bool;"
            "variable rest = r[7..1] : int(7);")
        trigger = device.variables()[0].behaviors.trigger
        assert isinstance(trigger.for_value, ast.BoolValue)
        assert trigger.for_value.value is True

    def test_block_and_volatile_qualifiers(self):
        device = parse_body(
            "register data = base @ 0 : bit[8];"
            "variable v = data, trigger, volatile, block : int(8);")
        behaviors = device.variables()[0].behaviors
        assert behaviors.volatile and behaviors.block
        assert behaviors.trigger.direction is ast.AccessDirection.BOTH

    def test_serialized_variable(self):
        device = parse_body(
            "register lo = base @ 0 : bit[8];"
            "register hi = base @ 1 : bit[8];"
            "variable x = hi # lo : int(16) serialized as {lo; hi};")
        serialization = device.variables()[0].serialization
        assert [s.register for s in serialization] == ["lo", "hi"]

    def test_set_action_with_variable_reference(self):
        device = parse_body(
            "register r = base @ 0 : bit[8];"
            "private variable xm : bool;"
            "variable v = r[0], set {xm = v} : bool;"
            "variable rest = r[7..1] : int(7);")
        (action,) = device.variables()[1].set_actions
        assert action.target == "xm"
        assert isinstance(action.value, ast.SymbolValue)


class TestStructures:
    def test_structure_members(self):
        device = parse_body(
            "register a = base @ 0 : bit[8];"
            "structure s = {"
            "  variable lo = a[3..0], volatile : int(4);"
            "  variable hi = a[7..4], volatile : int(4);"
            "};")
        structure = device.structures()[0]
        assert [m.name for m in structure.members] == ["lo", "hi"]

    def test_conditional_serialization(self):
        device = parse_body(
            "register w1 = write base @ 0, mask '...1....' : bit[8];"
            "register w2 = write base @ 1 : bit[8];"
            "structure init = {"
            "  variable mode = w1[0] : { SINGLE => '1', MULTI => '0' };"
            "  variable pad = w1[7..5] : int(3);"
            "  variable l = w1[3..1] : int(3);"
            "  variable vec = w2 : int(8);"
            "} serialized as { w1; if (mode == SINGLE) w2; };")
        serialization = device.structures()[0].serialization
        assert isinstance(serialization[0], ast.SerWrite)
        conditional = serialization[1]
        assert isinstance(conditional, ast.SerIf)
        assert conditional.variable == "mode"
        assert isinstance(conditional.body, ast.SerWrite)
        assert conditional.body.register == "w2"


class TestTypesAndEnums:
    def test_named_type_declaration(self):
        device = parse_body(
            "type mode_t = { ON <=> '1', OFF <=> '0' };"
            "register r = base @ 0 : bit[8];"
            "variable m = r[0] : mode_t;"
            "variable rest = r[7..1] : int(7);")
        decl = device.type_decls()[0]
        assert decl.name == "mode_t"
        assert isinstance(decl.type_expr, ast.EnumTypeExpr)

    def test_enum_directions(self):
        device = parse_body(
            "register r = base @ 0 : bit[8];"
            "variable v = r[1..0] : "
            "{ A => '00', B <= '01', C <=> '10', D <= '11' };"
            "variable rest = r[7..2] : int(6);")
        items = device.variables()[0].type_expr.items
        assert items[0].direction is EnumDirection.WRITE
        assert items[1].direction is EnumDirection.READ
        assert items[2].direction is EnumDirection.BOTH

    def test_int_set_type(self):
        device = parse_body(
            "register r = base @ 0 : bit[8];"
            "variable v = r[4..0] : int{0..17,25};"
            "variable rest = r[7..5] : int(3);")
        type_expr = device.variables()[0].type_expr
        assert type_expr.values() == frozenset(range(18)) | {25}

    def test_structure_valued_pre_action(self):
        source = (
            "register r = base @ 0 : bit[8];"
            "structure XS = {"
            "  variable xa = r[4..0] : int(5);"
            "  variable xrae = r[5] : bool;"
            "};"
            "variable rest = r[7..6] : int(2);"
            "register X(j : int{0..17}) = base @ 1, "
            "pre {XS = {xa => j; xrae => true}} : bit[8];"
            "register X2 = X(2);"
            "variable v = X2 : int(8);")
        device = parse_body(source)
        constructor = [r for r in device.registers() if r.is_constructor][0]
        (action,) = constructor.pre_actions
        value = action.value
        assert isinstance(value, ast.StructValue)
        assert value.fields[0][0] == "xa"
        assert isinstance(value.fields[1][1], ast.BoolValue)


class TestShippedSpecs:
    """Every shipped specification must parse."""

    def test_parses(self, spec_name):
        from repro.specs import load_source
        device = parse(load_source(spec_name), filename=spec_name)
        assert device.declarations
