"""Bridge cross-validation: generated C stubs drive the Python models.

The strongest end-to-end statement this repository can make: the C
header produced by the compiler is linked into a small harness whose
``devil_in``/``devil_out`` talk a line protocol over stdin/stdout; the
Python side services each access against the *same behavioural device
models* the rest of the suite uses.  The C stubs therefore operate the
simulated hardware itself — not a re-implementation — and the observed
device state must match a pure-Python run of the same driver sequence.

Protocol (one line per access):  ``R port width`` → reply ``value``;
``W port value width`` → reply ``ok``; ``Q`` ends the session.
"""

import shutil
import subprocess
import tempfile
from pathlib import Path

import pytest

from repro.bus import Bus
from repro.devices.cs4236 import VERSION_ID, Cs4236Model
from repro.devices.pic8259 import Pic8259Model
from tests.conftest import shipped_spec

HAVE_GCC = shutil.which("gcc") is not None

pytestmark = pytest.mark.skipif(not HAVE_GCC, reason="gcc not available")

_BRIDGE_IO = r"""
#include <stdio.h>
#include <stdlib.h>

static unsigned bridge_read(unsigned port, int width) {
    unsigned value;
    printf("R %u %d\n", port, width);
    fflush(stdout);
    if (scanf("%u", &value) != 1)
        exit(2);
    return value;
}

static void bridge_write(unsigned value, unsigned port, int width) {
    char reply[8];
    printf("W %u %u %d\n", port, value, width);
    fflush(stdout);
    if (scanf("%7s", reply) != 1)
        exit(2);
}

unsigned devil_in(unsigned port, int width)
{ return bridge_read(port, width); }
void devil_out(unsigned value, unsigned port, int width)
{ bridge_write(value, port, width); }
void devil_in_rep(unsigned port, int width, unsigned long n,
                  unsigned *buf) {
    unsigned long i;
    for (i = 0; i < n; i++)
        buf[i] = bridge_read(port, width);
}
void devil_out_rep(unsigned port, int width, unsigned long n,
                   const unsigned *buf) {
    unsigned long i;
    for (i = 0; i < n; i++)
        bridge_write(buf[i], port, width);
}
#define DEVIL_IO_DECLARED
#define DEVIL_DEBUG
#define DEVIL_NO_REF
"""


def run_bridged(spec_name: str, prefix: str, driver_c: str,
                bus: Bus) -> str:
    """Compile header+driver, run it, service its I/O from ``bus``.

    Returns the driver's non-protocol stdout (its printed results).
    """
    header = shipped_spec(spec_name).emit_c(prefix=prefix)
    with tempfile.TemporaryDirectory() as workdir:
        work = Path(workdir)
        (work / f"{spec_name}.dil.h").write_text(header)
        (work / "main.c").write_text(
            _BRIDGE_IO + f'#include "{spec_name}.dil.h"\n' + driver_c)
        subprocess.run(["gcc", "-Wall", "-Werror", "-std=c99", "main.c",
                        "-o", "harness"], cwd=work, check=True,
                       capture_output=True)
        with subprocess.Popen(["./harness"], cwd=work,
                              stdin=subprocess.PIPE,
                              stdout=subprocess.PIPE, text=True) as proc:
            results = []
            assert proc.stdout is not None and proc.stdin is not None
            for line in proc.stdout:
                parts = line.split()
                if not parts:
                    continue
                if parts[0] == "R":
                    value = bus.read(int(parts[1]), int(parts[2]))
                    proc.stdin.write(f"{value}\n")
                    proc.stdin.flush()
                elif parts[0] == "W":
                    bus.write(int(parts[2]), int(parts[1]),
                              int(parts[3]))
                    proc.stdin.write("ok\n")
                    proc.stdin.flush()
                elif parts[0] == "Q":
                    break
                else:
                    results.append(line.rstrip("\n"))
            proc.stdin.close()
            proc.wait(timeout=10)
            assert proc.returncode == 0
    return "\n".join(results)


class TestCs4236Bridge:
    """The C stubs must drive the extended-register automaton."""

    DRIVER = """
int main(void) {
    cs4_init(0x534);
    cs4_set_left_dac_output(9u, 1u, 0u);
    printf("version %u\\n", cs4_get_version());
    cs4_set_mic_left_volume(19u);
    cs4_set_ACF(1u);
    printf("version2 %u\\n", cs4_get_version());
    printf("Q\\n");
    return 0;
}
"""

    def test_c_stubs_drive_python_model(self):
        bus = Bus()
        chip = Cs4236Model()
        bus.map_device(0x534, 2, chip, "cs4236")
        output = run_bridged("cs4236", "cs4", self.DRIVER, bus)
        results = dict(line.split() for line in output.splitlines())
        assert int(results["version"]) == VERSION_ID
        assert int(results["version2"]) == VERSION_ID
        # Side effects landed in the Python model:
        assert chip.indexed[6] == 9 | 0x80       # attenuation + mute
        assert chip.extended[2] == 19            # mic volume via X2
        assert chip.indexed[23] & 1 == 1         # ACF set without a
        # mode trip (otherwise version2 would not have read X25), and
        # the final get_version() legitimately leaves extended mode on
        # (a control write is what turns it off).
        assert chip.extended_mode
        assert chip.extended_address == 25


class TestPic8259Bridge:
    """Conditional serialization + modes, compiled to C, real model."""

    DRIVER = """
int main(void) {
    pic_init(0x20);
    pic_set_init(0u, PIC_EDGE, PIC_INTERVAL8, PIC_CASCADED, 1u,
                 0x20u, 0x04u, 0u, 0u, PIC_BUF_SLAVE, 0u, PIC_X8086);
    pic_set_device_mode(PIC_operation);
    pic_set_irq_mask(0x00u);
    printf("mask %u\\n", pic_get_irq_mask());
    pic_set_eoi(PIC_SPECIFIC_EOI, 3u);
    printf("Q\\n");
    return 0;
}
"""

    def test_init_sequence_through_c(self):
        bus = Bus()
        pic = Pic8259Model()
        bus.map_device(0x20, 2, pic, "pic")
        pic.raise_irq(3)
        pic.io_write(1, 0, 8)  # pre-unmask so acknowledge works later
        output = run_bridged("pic8259", "pic", self.DRIVER, bus)
        assert pic.init_log == [(0x11, 0x20, 0x04, 0x01)]
        assert pic.imr == 0
        results = dict(line.split() for line in output.splitlines())
        assert int(results["mask"]) == 0

    def test_short_init_sequence_through_c(self):
        driver = self.DRIVER.replace(
            "PIC_CASCADED, 1u", "PIC_SINGLE, 0u")
        bus = Bus()
        pic = Pic8259Model()
        bus.map_device(0x20, 2, pic, "pic")
        run_bridged("pic8259", "pic", driver, bus)
        # SINGLE without IC4: only two words hit the device.
        assert pic.init_log == [(0x12, 0x20)]
