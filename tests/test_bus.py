"""Unit tests for the simulated bus substrate."""

import pytest

from repro.bus import Bus, BusError, IoAccounting


class Echo:
    """Device returning offset+seed, recording writes."""

    def __init__(self, seed=0):
        self.seed = seed
        self.writes = []

    def io_read(self, offset, width):
        return (self.seed + offset) & ((1 << width) - 1)

    def io_write(self, offset, value, width):
        self.writes.append((offset, value, width))


class TestMapping:
    def test_routing_by_base(self):
        bus = Bus()
        bus.map_device(0x100, 4, Echo(seed=1), "a")
        bus.map_device(0x200, 4, Echo(seed=100), "b")
        assert bus.inb(0x101) == 2
        assert bus.inb(0x202) == 102

    def test_overlapping_mappings_rejected(self):
        bus = Bus()
        bus.map_device(0x100, 8, Echo())
        with pytest.raises(BusError):
            bus.map_device(0x104, 8, Echo())

    def test_unmapped_access_fails(self):
        with pytest.raises(BusError):
            Bus().inb(0x100)

    def test_unmap_device(self):
        bus = Bus()
        device = Echo()
        bus.map_device(0x100, 4, device)
        bus.unmap_device(device)
        with pytest.raises(BusError):
            bus.inb(0x100)

    def test_bad_mapping_parameters(self):
        bus = Bus()
        with pytest.raises(BusError):
            bus.map_device(0x100, 0, Echo())
        with pytest.raises(BusError):
            bus.map_device(-1, 4, Echo())


class TestAccessWidths:
    def test_width_masking(self):
        bus = Bus()
        bus.map_device(0, 4, Echo(seed=0x1FF))
        assert bus.inb(0) == 0xFF
        assert bus.inw(0) == 0x1FF

    def test_invalid_width(self):
        bus = Bus()
        bus.map_device(0, 4, Echo())
        with pytest.raises(BusError):
            bus.read(0, 12)

    def test_outb_argument_order_is_value_port(self):
        bus = Bus()
        device = Echo()
        bus.map_device(0x23C, 4, device)
        bus.outb(0x91, 0x23F)
        assert device.writes == [(3, 0x91, 8)]

    def test_write_masks_value_to_width(self):
        bus = Bus()
        device = Echo()
        bus.map_device(0, 4, device)
        bus.outb(0x1FF, 0)
        assert device.writes[0][1] == 0xFF


class TestBlockTransfers:
    def test_block_read_counts_one_operation(self):
        bus = Bus()
        bus.map_device(0, 2, Echo(seed=7))
        values = bus.block_read(0, 10, 16)
        assert values == [7] * 10
        assert bus.accounting.block_ops == 1
        assert bus.accounting.block_words == 10
        assert bus.accounting.single_ops == 0

    def test_block_write(self):
        bus = Bus()
        device = Echo()
        bus.map_device(0, 2, device)
        count = bus.block_write(0, [1, 2, 3], 16)
        assert count == 3
        assert [w[1] for w in device.writes] == [1, 2, 3]

    def test_negative_count_rejected(self):
        bus = Bus()
        bus.map_device(0, 2, Echo())
        with pytest.raises(BusError):
            bus.block_read(0, -1, 16)


class TestAccounting:
    def test_counters(self):
        bus = Bus()
        bus.map_device(0, 4, Echo())
        bus.inb(0)
        bus.outw(1, 0)
        bus.block_read(0, 4, 32)
        accounting = bus.accounting
        assert accounting.reads == 1
        assert accounting.writes == 1
        assert accounting.total_ops == 3
        assert accounting.bus_transactions == 6
        assert accounting.single_by_width == {8: 1, 16: 1}
        assert accounting.block_words_by_width == {32: 4}

    def test_snapshot_and_delta(self):
        bus = Bus()
        bus.map_device(0, 4, Echo())
        bus.inb(0)
        before = bus.accounting.snapshot()
        bus.inb(0)
        bus.outb(1, 0)
        delta = bus.accounting.delta(before)
        assert delta.reads == 1
        assert delta.writes == 1
        assert delta.single_by_width == {8: 2}

    def test_reset(self):
        accounting = IoAccounting(reads=3, writes=2)
        accounting.reset()
        assert accounting.total_ops == 0


class TestTracing:
    def test_trace_entries(self):
        bus = Bus(tracing=True)
        bus.map_device(0, 4, Echo(seed=5))
        bus.inb(2)
        bus.outb(9, 3)
        assert [(e.op, e.port, e.value) for e in bus.trace] == \
            [("r", 2, 7), ("w", 3, 9)]

    def test_block_trace(self):
        bus = Bus(tracing=True)
        bus.map_device(0, 4, Echo())
        bus.block_read(0, 2, 16)
        assert [e.op for e in bus.trace] == ["rb", "rb"]

    def test_tracing_off_by_default(self):
        bus = Bus()
        bus.map_device(0, 4, Echo())
        bus.inb(0)
        assert bus.trace == []
