"""Property tests over randomly *generated* Devil specifications.

A hypothesis strategy builds whole random (but well-formed) device
specifications — several registers with masks, typed variables, a
private index variable with pre-actions, optional structures — and the
properties assert that the entire toolchain is closed over them:

* the checker accepts what the generator claims is well-formed,
* parse → print → parse is the identity (up to locations),
* runtime stubs, generated Python stubs and generated C all agree on
  the produced I/O (runtime vs generated Python compared by trace).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bus import Bus
from repro.devil.compiler import compile_spec
from repro.devil.parser import parse
from repro.devil.printer import print_device
from tests.test_printer import normalize


@st.composite
def register_specs(draw):
    """One register: a partition into fields plus a bit class per run."""
    cuts = sorted(draw(st.sets(st.integers(min_value=1, max_value=7),
                               min_size=0, max_size=3)))
    boundaries = [0] + cuts + [8]
    fields = []
    for i in range(len(boundaries) - 1):
        msb, lsb = boundaries[i + 1] - 1, boundaries[i]
        kind = draw(st.sampled_from(["var", "var", "var", "irrelevant",
                                     "forced0", "forced1"]))
        fields.append((msb, lsb, kind))
    if not any(kind == "var" for _, _, kind in fields):
        fields[0] = (fields[0][0], fields[0][1], "var")
    return fields


@st.composite
def device_specs(draw):
    """A whole device: 1..3 registers at distinct offsets."""
    register_count = draw(st.integers(min_value=1, max_value=3))
    registers = [draw(register_specs()) for _ in range(register_count)]
    signed_choices = [draw(st.booleans()) for _ in range(16)]

    lines = [f"device generated (base : bit[8] port "
             f"@ {{0..{register_count - 1}}}) {{"]
    variable_specs = []
    for reg_index, fields in enumerate(registers):
        mask_chars = []
        for bit in range(7, -1, -1):
            for msb, lsb, kind in fields:
                if lsb <= bit <= msb:
                    mask_chars.append({"var": ".", "irrelevant": "-",
                                       "forced0": "0",
                                       "forced1": "1"}[kind])
                    break
        mask = "".join(mask_chars)
        lines.append(f"    register r{reg_index} = base @ {reg_index}, "
                     f"mask '{mask}' : bit[8];")
        for field_index, (msb, lsb, kind) in enumerate(fields):
            if kind != "var":
                continue
            width = msb - lsb + 1
            name = f"v{reg_index}_{field_index}"
            signed = signed_choices[(reg_index * 5 + field_index) % 16] \
                and width > 1
            type_text = f"signed int({width})" if signed \
                else f"int({width})"
            lines.append(f"    variable {name} = "
                         f"r{reg_index}[{msb}..{lsb}] : {type_text};")
            variable_specs.append((name, width, signed))
    lines.append("}")
    return "\n".join(lines), variable_specs


class Ram:
    def __init__(self):
        self.cells = [0] * 8

    def io_read(self, offset, width):
        return self.cells[offset]

    def io_write(self, offset, value, width):
        self.cells[offset] = value


class TestGeneratedSpecs:
    @settings(max_examples=50, deadline=None)
    @given(device_specs())
    def test_checker_accepts_wellformed(self, generated):
        source, _ = generated
        spec = compile_spec(source)
        assert spec.model.registers

    @settings(max_examples=50, deadline=None)
    @given(device_specs())
    def test_print_parse_roundtrip(self, generated):
        source, _ = generated
        first = parse(source)
        second = parse(print_device(first))
        assert normalize(first) == normalize(second)

    @settings(max_examples=30, deadline=None)
    @given(device_specs(), st.data())
    def test_runtime_and_generated_python_agree(self, generated, data):
        source, variables = generated
        spec = compile_spec(source)

        namespace: dict = {}
        exec(compile(spec.emit_python(), "gen.py", "exec"), namespace)
        (stub_cls,) = [v for k, v in namespace.items()
                       if k.endswith("Stubs")]
        bus_a, bus_b = Bus(tracing=True), Bus(tracing=True)
        bus_a.map_device(0, 8, Ram())
        bus_b.map_device(0, 8, Ram())
        compiled = stub_cls(bus_a, 0)
        interpreted = spec.bind(bus_b, {"base": 0}, debug=False)

        for name, width, signed in variables:
            low = -(1 << (width - 1)) if signed else 0
            high = (1 << (width - 1)) - 1 if signed \
                else (1 << width) - 1
            value = data.draw(st.integers(min_value=low, max_value=high),
                              label=name)
            getattr(compiled, f"set_{name}")(value)
            interpreted.set(name, value)
            assert getattr(compiled, f"get_{name}")() == \
                interpreted.get(name) == value
        assert bus_a.trace == bus_b.trace

    @settings(max_examples=20, deadline=None)
    @given(device_specs())
    def test_c_header_always_generates(self, generated):
        source, _ = generated
        header = compile_spec(source).emit_c(prefix="gen")
        assert "gen_state_t" in header
