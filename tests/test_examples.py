"""Every example script must run to completion.

The examples are part of the public API surface; this keeps them green
as the library evolves.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))
SRC_DIR = EXAMPLES_DIR.parent / "src"

EXPECTED_MARKERS = {
    "quickstart.py": "Done.",
    "busmouse_driver.py": "same operations, same counts: True",
    "ide_disk.py": "every sector intact",
    "ne2000_packets.py": "ethertype 0x0806",
    "sound_mixer.py": "automaton state consistent",
    "sound_playback.py": "autoinit restored",
    "xserver_rects.py": "primitives:",
    "advanced_features.py": "transaction",
    "emit_c_stubs.py": "busmouse.dil.h",
}


def test_every_example_has_an_expectation():
    assert set(EXAMPLES) == set(EXPECTED_MARKERS)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, tmp_path):
    # The subprocess must see the in-tree package even when pytest was
    # launched from an environment where `repro` is importable only via
    # the parent process's sys.path.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                          else []))
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=120, cwd=tmp_path, env=env)
    assert result.returncode == 0, result.stderr
    assert EXPECTED_MARKERS[name] in result.stdout
