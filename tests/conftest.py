"""Shared fixtures: compiled specifications and simulated machines."""

from __future__ import annotations

import pytest

from repro.bus import Bus
from repro.devices.busmouse import REGION_SIZE as MOUSE_REGION
from repro.devices.busmouse import BusmouseModel
from repro.devices.ide import REGION_SIZE as IDE_REGION
from repro.devices.ide import IdeControlPort, IdeDiskModel
from repro.devices.ne2000 import REGION_SIZE as NE_REGION
from repro.devices.ne2000 import (
    Ne2000DataPort,
    Ne2000Model,
    Ne2000ResetPort,
)
from repro.devices.permedia2 import REGION_SIZE as PM2_REGION
from repro.devices.permedia2 import Permedia2Aperture, Permedia2Model
from repro.devices.piix4 import REGION_SIZE as BM_REGION
from repro.devices.piix4 import Piix4Model
from repro.obs.workloads import (
    BM_BASE,
    IDE_BASE,
    IDE_CTRL,
    MOUSE_BASE,
    NE_BASE,
    NE_DATA,
    NE_RESET,
    PM2_FB,
    PM2_REGS,
)
from repro.specs import SPEC_NAMES, compile_shipped

def shipped_spec(name: str):
    """Compile a shipped spec once per process.

    ``compile_shipped`` is memoized (``functools.lru_cache``), so this
    is a plain alias kept for the existing call sites.
    """
    return compile_shipped(name)


@pytest.fixture(params=SPEC_NAMES)
def spec_name(request) -> str:
    return request.param


@pytest.fixture
def bus() -> Bus:
    return Bus()


@pytest.fixture
def mouse_machine(bus):
    """(bus, model, bound stubs) for the busmouse."""
    mouse = BusmouseModel()
    bus.map_device(MOUSE_BASE, MOUSE_REGION, mouse, "busmouse")
    device = shipped_spec("busmouse").bind(bus, {"base": MOUSE_BASE})
    return bus, mouse, device


@pytest.fixture
def ide_machine(bus):
    """(bus, disk, busmaster, memory, ide stubs, piix4 stubs)."""
    disk = IdeDiskModel(total_sectors=128)
    for index in range(0, len(disk.store), 7):
        disk.store[index] = (index * 13) & 0xFF
    bus.map_device(IDE_BASE, IDE_REGION, disk, "ide")
    bus.map_device(IDE_CTRL, 1, IdeControlPort(disk), "ide-ctrl")
    memory = bytearray(1 << 18)
    busmaster = Piix4Model(disk, memory)
    bus.map_device(BM_BASE, BM_REGION, busmaster, "piix4")
    ide_dev = shipped_spec("ide").bind(
        bus, {"cmd": IDE_BASE, "data": IDE_BASE, "data32": IDE_BASE,
              "ctrl": IDE_CTRL})
    bm_dev = shipped_spec("piix4").bind(
        bus, {"io": BM_BASE, "dtp": BM_BASE + 4})
    return bus, disk, busmaster, memory, ide_dev, bm_dev


@pytest.fixture
def nic_machine(bus):
    """(bus, nic model, bound stubs)."""
    nic = Ne2000Model()
    bus.map_device(NE_BASE, NE_REGION, nic, "ne2000")
    bus.map_device(NE_DATA, 2, Ne2000DataPort(nic), "ne2000-data")
    bus.map_device(NE_RESET, 1, Ne2000ResetPort(nic), "ne2000-reset")
    device = shipped_spec("ne2000").bind(
        bus, {"base": NE_BASE, "data": NE_DATA, "rst": NE_RESET})
    return bus, nic, device


@pytest.fixture
def gpu_machine(bus):
    """(bus, gpu model, bound stubs)."""
    gpu = Permedia2Model(width=128, height=96)
    bus.map_device(PM2_REGS, PM2_REGION, gpu, "permedia2")
    bus.map_device(PM2_FB, 1, Permedia2Aperture(gpu), "permedia2-fb")
    device = shipped_spec("permedia2").bind(
        bus, {"regs": PM2_REGS, "fb": PM2_FB})
    return bus, gpu, device
