"""Unit tests for the register-mask algebra."""

import pytest

from repro.devil.errors import DevilCheckError
from repro.devil.mask import (
    BitKind,
    Mask,
    bits_of_range,
    extract_bits,
    insert_bits,
    pattern_value,
)


class TestParsing:
    def test_figure_one_index_register_mask(self):
        mask = Mask.parse("1..00000", 8)
        # Bit 7 forced 1, bits 6..5 variable, bits 4..0 forced 0.
        assert mask.forced_value == 0x80
        assert mask.variable_bits == 0b0110_0000
        assert mask.forced_bits == 0b1001_1111

    def test_nibble_mask(self):
        mask = Mask.parse("****....", 8)
        assert mask.variable_bits == 0x0F
        assert mask.irrelevant_bits == 0xF0
        assert mask.forced_bits == 0

    def test_reserved_and_irrelevant_both_irrelevant(self):
        mask = Mask.parse("-*......", 8)
        assert mask.irrelevant_bits == 0xC0

    def test_width_mismatch_rejected(self):
        with pytest.raises(DevilCheckError):
            Mask.parse("101", 8)

    def test_all_variable_default(self):
        mask = Mask.all_variable(8)
        assert mask.variable_bits == 0xFF
        assert mask.forced_bits == 0

    def test_roundtrip_pattern(self):
        for pattern in ("1001000.", "000.0000", "****....", "01.*-01."):
            assert Mask.parse(pattern, 8).pattern() == pattern

    def test_kinds_are_lsb_first(self):
        mask = Mask.parse("1000000.", 8)
        assert mask.kinds[0] is BitKind.VARIABLE
        assert mask.kinds[7] is BitKind.FORCE1


class TestWriteApplication:
    def test_forced_bits_override(self):
        mask = Mask.parse("1001000.", 8)
        # Figure 2: writing CONFIGURATION ('1') must produce 0x91.
        assert mask.apply_write(0x01) == 0x91
        assert mask.apply_write(0x00) == 0x90

    def test_irrelevant_bits_cleared(self):
        mask = Mask.parse("****....", 8)
        assert mask.apply_write(0xFF) == 0x0F

    def test_index_register_write(self):
        mask = Mask.parse("1..00000", 8)
        # MSE_READ_Y_LOW: index 2 in bits 6..5 plus the forced bit 7.
        assert mask.apply_write(2 << 5) == 0xC0


class TestDisjointness:
    def test_disjoint_variable_bits(self):
        first = Mask.parse("000.0000", 8)   # interrupt bit 4
        second = Mask.parse("1..00000", 8)  # index bits 6..5
        assert first.disjoint_with(second)

    def test_overlapping_variable_bits(self):
        first = Mask.parse("....----", 8)
        second = Mask.parse("..------", 8)
        assert not first.disjoint_with(second)

    def test_write_discrimination_by_forced_bit(self):
        icw1 = Mask.parse("...1....", 8)
        ocw2 = Mask.parse("...00...", 8)
        assert icw1.write_discriminated_from(ocw2)
        assert ocw2.write_discriminated_from(icw1)

    def test_no_write_discrimination_same_forcing(self):
        first = Mask.parse("...1....", 8)
        second = Mask.parse("...1...."
                            , 8)
        assert not first.write_discriminated_from(second)


class TestRefinement:
    def test_refine_narrows_variable_bits(self):
        base = Mask.all_variable(8)
        refined = base.refine(Mask.parse("......0.", 8))
        assert refined.variable_bits == 0b1111_1101
        assert refined.forced_bits == 0b0000_0010

    def test_refine_cannot_resurrect_constrained_bit(self):
        base = Mask.parse("0.......", 8)
        with pytest.raises(DevilCheckError):
            base.refine(Mask.parse("1.......", 8))

    def test_refine_keeps_matching_constraint(self):
        base = Mask.parse("0.......", 8)
        refined = base.refine(Mask.parse("0.......", 8))
        assert refined.pattern() == "0......."

    def test_refine_width_mismatch(self):
        with pytest.raises(DevilCheckError):
            Mask.all_variable(8).refine(Mask.all_variable(16))


class TestBitHelpers:
    def test_bits_of_range(self):
        assert bits_of_range(6, 5) == 0b0110_0000
        assert bits_of_range(0, 0) == 1

    def test_bits_of_range_rejects_reversed(self):
        with pytest.raises(ValueError):
            bits_of_range(2, 5)

    def test_extract_insert_roundtrip(self):
        value = insert_bits(0, 6, 5, 0b10)
        assert value == 0b0100_0000
        assert extract_bits(value, 6, 5) == 0b10

    def test_insert_preserves_other_bits(self):
        assert insert_bits(0xFF, 3, 0, 0) == 0xF0

    def test_pattern_value(self):
        assert pattern_value("1001") == 9

    def test_pattern_value_rejects_wildcards(self):
        with pytest.raises(ValueError):
            pattern_value("10.1")
