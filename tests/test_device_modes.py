"""Tests for device operating modes (conditional declarations, §2.2).

A ``mode`` declaration splits the register file into operating modes:
registers tagged ``in <mode>`` are only addressable while the device is
in that mode.  The current mode is the implicit ``device_mode``
variable (readable, writable, usable in ``set`` actions), the first
declared mode is the reset state, and two registers in different modes
never conflict on a shared port — the static typing the 8259A's
ICW/OCW overlap really wants.
"""

import pytest

from repro.bus import Bus
from repro.devil.compiler import compile_spec
from repro.devil.errors import DevilCheckError, DevilRuntimeError
from repro.devil.parser import parse
from repro.devil.printer import print_device

MODED = """
device moded (base : bit[8] port @ {0})
{
    mode setup, operational;

    register config = write base @ 0, in setup : bit[8];
    variable threshold = config : int(8);

    register live = base @ 0, in operational : bit[8];
    variable reading = live, volatile : int(8);
}
"""

AUTO_SWITCH = """
device autosw (base : bit[8] port @ {0..1})
{
    mode setup, operational;

    register config = write base @ 0, in setup,
        set {device_mode = operational} : bit[8];
    variable threshold = config : int(8);

    register live = base @ 1, in operational : bit[8];
    variable reading = live, volatile : int(8);
}
"""


class Ram:
    def __init__(self):
        self.cells = [0] * 4

    def io_read(self, offset, width):
        return self.cells[offset]

    def io_write(self, offset, value, width):
        self.cells[offset] = value


def bind(source, debug=True):
    spec = compile_spec(source)
    bus = Bus()
    ram = Ram()
    bus.map_device(0x80, 4, ram, "ram")
    return spec, ram, spec.bind(bus, {"base": 0x80}, debug=debug)


class TestChecking:
    def test_mode_declaration_resolves(self):
        spec = compile_spec(MODED)
        assert spec.model.modes == ("setup", "operational")
        assert spec.model.registers["config"].mode == "setup"
        assert spec.model.registers["live"].mode == "operational"

    def test_device_mode_variable_exposed(self):
        spec = compile_spec(MODED)
        variable = spec.model.variables["device_mode"]
        assert variable.memory and not variable.private

    def test_shared_port_across_modes_is_legal(self):
        # config (write) and live (read+write) share base@0 with full
        # masks and identical pre-actions — only the modes separate
        # them, and that is enough.
        spec = compile_spec(MODED)
        assert not [w for w in spec.warnings
                    if "share write port" in w.message]

    def test_unknown_mode_rejected(self):
        with pytest.raises(DevilCheckError, match="unknown mode"):
            compile_spec(MODED.replace("in operational", "in flight"))

    def test_unused_mode_rejected(self):
        source = MODED.replace("mode setup, operational;",
                               "mode setup, operational, spare;")
        with pytest.raises(DevilCheckError, match="spare"):
            compile_spec(source)

    def test_single_mode_rejected(self):
        source = MODED.replace("mode setup, operational;", "mode setup;") \
                      .replace(", in operational", ", in setup")
        with pytest.raises(DevilCheckError, match="at least two"):
            compile_spec(source)

    def test_duplicate_mode_rejected(self):
        with pytest.raises(DevilCheckError, match="twice"):
            compile_spec(MODED.replace("mode setup, operational;",
                                       "mode setup, setup, operational;"))

    def test_mode_is_not_reserved_elsewhere(self):
        source = """
device plain (base : bit[8] port @ {0})
{
    register r = base @ 0 : bit[8];
    variable mode = r : int(8);
}
"""
        spec = compile_spec(source)
        assert "mode" in spec.model.variables


class TestRuntime:
    def test_reset_mode_is_first_declared(self):
        _, _, device = bind(MODED)
        assert device.get_device_mode() == "setup"

    def test_wrong_mode_access_raises_in_debug(self):
        _, _, device = bind(MODED)
        with pytest.raises(DevilRuntimeError, match="only addressable"):
            device.get_reading()

    def test_mode_switch_enables_registers(self):
        _, ram, device = bind(MODED)
        device.set_threshold(0x42)
        device.set_device_mode("operational")
        ram.cells[0] = 0x99
        assert device.get_reading() == 0x99
        with pytest.raises(DevilRuntimeError):
            device.set_threshold(1)

    def test_release_mode_skips_the_check(self):
        _, _, device = bind(MODED, debug=False)
        device.get_reading()  # tolerated, like the C build without
        # DEVIL_DEBUG

    def test_set_action_switches_mode(self):
        """A register access can drive the mode automaton itself."""
        _, _, device = bind(AUTO_SWITCH)
        assert device.get_device_mode() == "setup"
        device.set_threshold(7)
        assert device.get_device_mode() == "operational"
        device.get_reading()  # now legal without an explicit switch


class TestBackends:
    def test_c_header_checks_mode(self):
        spec = compile_spec(MODED)
        header = spec.emit_c(prefix="md")
        assert "MD_setup = 0" in header
        assert "MD_operational = 1" in header
        assert "d->mem_device_mode = MD_setup;" in header
        assert "addressed outside mode" in header

    def test_c_header_compiles(self):
        import shutil
        import subprocess
        import tempfile
        from pathlib import Path
        if shutil.which("gcc") is None:
            pytest.skip("gcc not available")
        spec = compile_spec(MODED)
        with tempfile.TemporaryDirectory() as workdir:
            work = Path(workdir)
            (work / "moded.dil.h").write_text(spec.emit_c(prefix="md"))
            (work / "main.c").write_text("""
unsigned devil_in(unsigned port, int width);
void devil_out(unsigned value, unsigned port, int width);
void devil_in_rep(unsigned port, int width, unsigned long count,
                  unsigned *buffer);
void devil_out_rep(unsigned port, int width, unsigned long count,
                   const unsigned *buffer);
#define DEVIL_IO_DECLARED
#define DEVIL_DEBUG
#include "moded.dil.h"
int main(void) { md_state_t s; (void)s; return 0; }
""")
            result = subprocess.run(
                ["gcc", "-Wall", "-Wextra", "-Werror", "-std=c99", "-c",
                 "main.c"], cwd=work, capture_output=True, text=True)
            assert result.returncode == 0, result.stderr

    def test_python_backend_enforces_modes(self):
        spec = compile_spec(MODED)
        namespace: dict = {}
        exec(compile(spec.emit_python(), "gen.py", "exec"), namespace)
        (cls,) = [v for k, v in namespace.items() if k.endswith("Stubs")]
        bus = Bus()
        bus.map_device(0x80, 4, Ram(), "ram")
        stubs = cls(bus, 0x80, debug=True)
        assert stubs.get_device_mode() == "setup"
        with pytest.raises(Exception, match="outside mode"):
            stubs.get_reading()
        stubs.set_device_mode("operational")
        stubs.get_reading()

    def test_printer_roundtrip(self):
        from tests.test_printer import normalize
        first = parse(MODED)
        assert normalize(parse(print_device(first))) == normalize(first)
